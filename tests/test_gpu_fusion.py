"""Elementwise-fusion pass tests."""

from __future__ import annotations

import pytest

from repro.graph import GraphBuilder
from repro.gpu import A100, fuse_elementwise, profile_graph
from repro.models import ModelConfig, build_model


def conv_bn_relu_graph():
    b = GraphBuilder("cbr")
    x = b.input((4, 3, 16, 16))
    y = b.conv2d(x, 8, 3, padding=1)
    y = b.batchnorm2d(y)
    y = b.relu(y)
    b.global_avgpool(y)
    return b.finish()


class TestFusion:
    def test_chain_collapses(self):
        g = conv_bn_relu_graph()
        f = fuse_elementwise(g)
        hist = f.op_type_histogram()
        assert "BatchNorm2d" not in hist
        assert "ReLU" not in hist
        assert f.num_nodes == g.num_nodes - 2

    def test_flops_conserved(self):
        g = conv_bn_relu_graph()
        f = fuse_elementwise(g)
        assert f.total_flops() == g.total_flops()

    def test_fused_graph_validates(self):
        fuse_elementwise(conv_bn_relu_graph()).validate()

    def test_original_untouched(self):
        g = conv_bn_relu_graph()
        n = g.num_nodes
        fuse_elementwise(g)
        assert g.num_nodes == n

    def test_shared_output_blocks_fusion(self):
        # Conv output also feeds an Add -> the ReLU must NOT fuse.
        b = GraphBuilder("branch")
        x = b.input((2, 4, 8, 8))
        y = b.conv2d(x, 4, 3, padding=1)
        r = b.relu(y)
        b.add(r, y)
        g = b.finish()
        f = fuse_elementwise(g)
        assert "ReLU" in f.op_type_histogram()

    def test_elementwise_without_heavy_producer_kept(self):
        b = GraphBuilder("pool_act")
        x = b.input((2, 4, 8, 8))
        y = b.maxpool2d(x, 2, 2)
        b.relu(y)  # producer is a pool, not a heavy op
        f = fuse_elementwise(b.finish())
        assert "ReLU" in f.op_type_histogram()

    def test_resnet_fusion_reduces_kernels(self):
        g = build_model("resnet-18", ModelConfig(batch_size=16))
        f = fuse_elementwise(g)
        assert f.num_nodes < g.num_nodes
        p_orig = profile_graph(g, A100, check_memory=False)
        p_fused = profile_graph(f, A100, check_memory=False)
        assert p_fused.num_kernels < p_orig.num_kernels

    def test_fusion_shifts_occupancy_down(self):
        """Fused graphs lose the high-occupancy elementwise kernels, so
        the duration-weighted occupancy drops (GEMM share grows)."""
        g = build_model("vgg-11", ModelConfig(batch_size=32))
        f = fuse_elementwise(g)
        occ_orig = profile_graph(g, A100, check_memory=False).occupancy
        occ_fused = profile_graph(f, A100, check_memory=False).occupancy
        assert occ_fused <= occ_orig + 1e-9

    def test_default_name(self):
        assert fuse_elementwise(conv_bn_relu_graph()).name.endswith("_fused")

    def test_output_shape_propagated(self):
        b = GraphBuilder("shape")
        x = b.input((2, 4, 8, 8))
        y = b.conv2d(x, 6, 3, padding=1)
        b.relu(y)
        f = fuse_elementwise(b.finish())
        conv = next(n for n in f.nodes.values() if n.op_type == "Conv2d")
        assert conv.output_shape == (2, 6, 8, 8)
        assert conv.name.endswith("_fused")
