"""Model-zoo tests: every Table II architecture builds a valid graph."""

from __future__ import annotations

import pytest

from repro.graph import GraphValidationError
from repro.models import (MODEL_FAMILY, ModelConfig, build_model,
                          build_resnet, build_vgg, build_vit, build_swin,
                          build_maxvit, build_bert, build_clip,
                          build_convnext, list_models)

SMALL = ModelConfig(batch_size=8, in_channels=3, image_size=224, seq_len=64)


@pytest.mark.parametrize("name", list_models())
def test_every_model_builds_and_validates(name):
    g = build_model(name, SMALL)
    g.validate()
    assert g.num_nodes > 5
    assert g.num_edges >= g.num_nodes - 2
    assert g.total_flops() > 0


@pytest.mark.parametrize("name", list_models())
def test_every_model_is_connected_dag(name):
    import networkx as nx
    g = build_model(name, SMALL).to_networkx()
    assert nx.is_directed_acyclic_graph(g)
    assert nx.is_weakly_connected(g)


class TestRegistry:
    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet-101")

    def test_case_insensitive(self):
        assert build_model("ReSNeT-18", SMALL).num_nodes == \
            build_model("resnet-18", SMALL).num_nodes

    def test_overrides(self):
        g = build_model("lenet", SMALL, batch_size=16)
        assert g.nodes[0].output_shape[0] == 16

    def test_family_covers_registry(self):
        assert set(MODEL_FAMILY) == set(list_models())
        assert set(MODEL_FAMILY.values()) == {"cnn", "rnn", "transformer"}


class TestCNNs:
    def test_vgg_depth_ordering(self):
        f11 = build_vgg(SMALL, 11).total_flops()
        f13 = build_vgg(SMALL, 13).total_flops()
        f16 = build_vgg(SMALL, 16).total_flops()
        assert f11 < f13 < f16

    def test_vgg_invalid_depth(self):
        with pytest.raises(ValueError):
            build_vgg(SMALL, 19)

    def test_resnet_depth_ordering(self):
        n18 = build_resnet(SMALL, 18).num_nodes
        n34 = build_resnet(SMALL, 34).num_nodes
        n50 = build_resnet(SMALL, 50).num_nodes
        assert n18 < n34 < n50

    def test_resnet_invalid_depth(self):
        with pytest.raises(ValueError):
            build_resnet(SMALL, 101)

    def test_resnet_has_residual_adds(self):
        hist = build_resnet(SMALL, 18).op_type_histogram()
        assert hist["Add"] == 8  # two blocks per stage, four stages

    def test_resnet50_uses_bottlenecks(self):
        hist = build_resnet(SMALL, 50).op_type_histogram()
        # 1x1-3x3-1x1 bottlenecks -> many more convs than resnet-18.
        assert hist["Conv2d"] > 40

    def test_convnext_depthwise(self):
        hist = build_convnext(SMALL, "base").op_type_histogram()
        assert hist["DepthwiseConv2d"] == 3 + 3 + 27 + 3

    def test_flops_scale_linearly_with_batch(self):
        f8 = build_model("vgg-11", SMALL).total_flops()
        f16 = build_model("vgg-11", SMALL, batch_size=16).total_flops()
        assert abs(f16 / f8 - 2.0) < 0.01

    def test_input_channels_respected(self):
        g = build_model("alexnet", SMALL, in_channels=7)
        assert g.nodes[0].output_shape[1] == 7


class TestRNNs:
    def test_lstm_has_lstm_node(self):
        hist = build_model("lstm", SMALL).op_type_histogram()
        assert hist["LSTM"] == 1

    def test_seq_len_scales_flops(self):
        f64 = build_model("lstm", SMALL).total_flops()
        f128 = build_model("lstm", SMALL, seq_len=128).total_flops()
        assert f128 > 1.5 * f64


class TestTransformers:
    def test_vit_variants_ordering(self):
        t = build_vit(SMALL, "tiny").total_flops()
        s = build_vit(SMALL, "small").total_flops()
        assert s > 2 * t

    def test_vit_invalid_variant(self):
        with pytest.raises(ValueError):
            build_vit(SMALL, "giant")

    def test_vit_patch_size_controls_tokens(self):
        f16 = build_vit(SMALL, "base", patch_size=16).total_flops()
        f32 = build_vit(SMALL, "base", patch_size=32).total_flops()
        assert f16 > f32

    def test_vit_has_attention_ops(self):
        hist = build_model("vit-t", SMALL).op_type_histogram()
        assert hist["Softmax"] == 12      # one per block
        assert hist["MatMul"] == 24       # QK^T and PV per block

    def test_swin_has_window_ops(self):
        hist = build_swin(SMALL, "small").op_type_histogram()
        assert hist["Shift"] > 0          # shifted-window attention
        assert hist["Softmax"] == 2 + 2 + 18 + 2

    def test_swin_invalid_variant(self):
        with pytest.raises(ValueError):
            build_swin(SMALL, "huge")

    def test_maxvit_mixes_conv_and_attention(self):
        hist = build_maxvit(SMALL, "tiny").op_type_histogram()
        assert hist["DepthwiseConv2d"] > 0
        assert hist["Softmax"] > 0

    def test_bert_variants(self):
        distil = build_bert(SMALL, "distilbert").num_nodes
        base = build_bert(SMALL, "base").num_nodes
        assert base > distil
        with pytest.raises(ValueError):
            build_bert(SMALL, "xxl")

    def test_gpt2_lm_head_dominates(self):
        g = build_model("gpt-2", SMALL)
        lm_head = max((n for n in g.nodes.values() if n.op_type == "Gemm"),
                      key=lambda n: n.flops)
        assert lm_head.attrs["out_features"] == 50257

    def test_seq_len_changes_transformer_flops(self):
        f64 = build_model("bert", SMALL).total_flops()
        f256 = build_model("bert", SMALL, seq_len=256).total_flops()
        assert f256 > 2 * f64


class TestCLIP:
    def test_clip_has_two_towers(self):
        g = build_clip(SMALL, "rn50")
        hist = g.op_type_histogram()
        assert hist["Embedding"] == 1     # text tower
        assert hist["Conv2d"] > 10        # image tower

    def test_clip_encoders_differ(self):
        rn = build_clip(SMALL, "rn50").total_flops()
        v32 = build_clip(SMALL, "vit-b/32").total_flops()
        v16 = build_clip(SMALL, "vit-b/16").total_flops()
        assert v16 > v32
        assert rn != v32

    def test_clip_invalid_encoder(self):
        with pytest.raises(ValueError):
            build_clip(SMALL, "rn101")

    def test_clip_joint_logits_shape(self):
        g = build_clip(SMALL, "vit-b/32")
        final = g.nodes[max(g.nodes)]
        assert final.op_type == "MatMul"
        assert final.output_shape == (8, 8)


class TestPaperTable2Coverage:
    #: every variant the paper's Table II lists, by our canonical names
    PAPER_MODELS = (
        "convnext-b",
        "resnet-18", "resnet-34", "resnet-50",
        "vgg-11", "vgg-13", "vgg-16",
        "alexnet", "lenet",
        "lstm", "rnn",
        "vit-s", "vit-t",
        "swin-s",
        "maxvit-t",
        "bert",          # distilbert-base-uncased-finetuned-sst-2-english
        "gpt-2",
        "clip-rn50", "clip-vit-b/32", "clip-vit-b/16",
    )

    def test_all_20_table2_models_in_registry(self):
        zoo = set(list_models())
        missing = [m for m in self.PAPER_MODELS if m not in zoo]
        assert not missing, missing
        assert len(self.PAPER_MODELS) == 20  # the paper's count

    def test_paper_family_counts(self):
        fam = {m: MODEL_FAMILY[m] for m in self.PAPER_MODELS}
        # Table II markers: 9 CNN, 2 RNN, 9 transformer/multimodal.
        assert sum(v == "cnn" for v in fam.values()) == 9
        assert sum(v == "rnn" for v in fam.values()) == 2
        assert sum(v == "transformer" for v in fam.values()) == 9


class TestNodeCountRange:
    def test_zoo_spans_paper_range(self):
        # Paper: 13 to 2664 nodes.  Our zoo spans roughly the same orders.
        counts = [build_model(m, SMALL).num_nodes for m in list_models()]
        assert min(counts) < 20
        assert max(counts) > 500
