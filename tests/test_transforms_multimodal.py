"""Tests for graph transforms and the multimodal tower pathway."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import encode_graph
from repro.graph import add_backward_edges
from repro.gpu import A100, profile_graph
from repro.models import ModelConfig, build_clip, build_model
from repro.models.clip import build_clip_towers

SMALL = ModelConfig(batch_size=8)


class TestBackwardEdges:
    def test_doubles_edge_count(self):
        g = build_model("lenet", SMALL)
        t = add_backward_edges(g)
        assert t.num_edges == 2 * g.num_edges
        assert t.num_nodes == g.num_nodes

    def test_half_edges_typed_backward(self):
        t = add_backward_edges(build_model("lenet", SMALL))
        kinds = [e.edge_type for e in t.edges]
        assert kinds.count("backward") == kinds.count("forward")

    def test_result_still_valid_dag(self):
        t = add_backward_edges(build_model("alexnet", SMALL))
        t.validate()

    def test_original_untouched(self):
        g = build_model("lenet", SMALL)
        before = g.num_edges
        add_backward_edges(g)
        assert g.num_edges == before

    def test_backward_edges_change_features(self):
        g = build_model("lenet", SMALL)
        t = add_backward_edges(g)
        gf = encode_graph(g, A100)
        tf = encode_graph(t, A100)
        assert tf.num_edges == 2 * gf.num_edges
        # Backward one-hot column is active for the mirrored half.
        assert tf.edge_features[:, 1].sum() == gf.num_edges

    def test_default_name_suffix(self):
        g = build_model("lenet", SMALL)
        assert add_backward_edges(g).name.endswith("_train")


class TestMultimodalTowers:
    def test_towers_build_independently(self):
        img, txt = build_clip_towers(SMALL, "rn50")
        img.validate()
        txt.validate()
        assert img.num_nodes > 100
        assert txt.num_nodes > 100

    def test_union_matches_fused_op_mix(self):
        """The disjoint union of the towers equals the fused CLIP graph
        minus the joint similarity operators."""
        img, txt = build_clip_towers(SMALL, "vit-b/32")
        union = img.disjoint_union(txt)
        fused = build_clip(SMALL, "vit-b/32")
        uh = union.op_type_histogram()
        fh = fused.op_type_histogram()
        # Fused adds: 2 Scale (normalize), 1 Transpose, 1 MatMul.
        assert fh["MatMul"] == uh["MatMul"] + 1
        assert fh["Scale"] == uh.get("Scale", 0) + 2
        for op, count in uh.items():
            assert fh.get(op, 0) >= count

    def test_union_profiles_like_sum_of_towers(self):
        img, txt = build_clip_towers(SMALL, "vit-b/32")
        union = img.disjoint_union(txt)
        busy_union = profile_graph(union, A100, check_memory=False).busy_time_s
        busy_parts = (profile_graph(img, A100, check_memory=False).busy_time_s
                      + profile_graph(txt, A100,
                                      check_memory=False).busy_time_s)
        np.testing.assert_allclose(busy_union, busy_parts, rtol=1e-9)

    def test_invalid_encoder(self):
        with pytest.raises(ValueError):
            build_clip_towers(SMALL, "rn101")


class TestAggregationLabels:
    def test_dataset_aggregation_choice(self):
        from repro.data import generate_dataset
        mean_ds = generate_dataset(["lenet"], [A100], 2, seed=3,
                                   aggregation="mean")
        max_ds = generate_dataset(["lenet"], [A100], 2, seed=3,
                                  aggregation="max")
        assert np.all(max_ds.labels() >= mean_ds.labels())

    def test_unknown_aggregation_raises(self):
        from repro.data import generate_dataset
        with pytest.raises(ValueError):
            generate_dataset(["lenet"], [A100], 1, seed=0,
                             aggregation="p99")
