"""Builder tests: shape inference, FLOPs formulas, error handling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphBuilder, OP_TYPES, op_flops, op_type_index


@pytest.fixture()
def b():
    return GraphBuilder("test")


class TestConv2d:
    def test_output_shape_basic(self, b):
        x = b.input((2, 3, 32, 32))
        y = b.conv2d(x, 8, 3, stride=1, padding=1)
        assert y.shape == (2, 8, 32, 32)

    def test_output_shape_strided(self, b):
        x = b.input((1, 3, 224, 224))
        y = b.conv2d(x, 64, 7, stride=2, padding=3)
        assert y.shape == (1, 64, 112, 112)

    def test_paper_flops_formula(self, b):
        # FLOPs(Conv2d) = 2 * K * C * R * S * N * P * Q  (Section III-C)
        n, c, h, w, k, r = 4, 3, 16, 16, 8, 3
        x = b.input((n, c, h, w))
        y = b.conv2d(x, k, r, padding=1)
        node = b.graph.nodes[y.node_id]
        p = q = 16
        assert node.flops == 2 * k * c * r * r * n * p * q

    def test_grouped_conv_flops_divided(self, b):
        x = b.input((1, 8, 8, 8))
        y_full = b.conv2d(x, 8, 3, padding=1, groups=1)
        x2 = b.input((1, 8, 8, 8))
        y_grp = b.conv2d(x2, 8, 3, padding=1, groups=8)
        assert b.graph.nodes[y_grp.node_id].flops * 8 == \
            b.graph.nodes[y_full.node_id].flops

    def test_depthwise_detected(self, b):
        x = b.input((1, 8, 8, 8))
        y = b.conv2d(x, 8, 3, padding=1, groups=8)
        assert b.graph.nodes[y.node_id].op_type == "DepthwiseConv2d"

    def test_invalid_groups_raises(self, b):
        x = b.input((1, 6, 8, 8))
        with pytest.raises(ValueError):
            b.conv2d(x, 8, 3, groups=4)

    def test_too_large_kernel_raises(self, b):
        x = b.input((1, 3, 4, 4))
        with pytest.raises(ValueError):
            b.conv2d(x, 8, 9)

    def test_workspace_positive(self, b):
        x = b.input((1, 3, 16, 16))
        y = b.conv2d(x, 4, 3, padding=1)
        assert b.graph.nodes[y.node_id].temp_bytes > 0


class TestPooling:
    def test_maxpool_shape(self, b):
        x = b.input((1, 4, 16, 16))
        assert b.maxpool2d(x, 2, 2).shape == (1, 4, 8, 8)

    def test_pool_default_stride_is_kernel(self, b):
        x = b.input((1, 4, 16, 16))
        assert b.avgpool2d(x, 4).shape == (1, 4, 4, 4)

    def test_global_avgpool(self, b):
        x = b.input((2, 8, 7, 7))
        assert b.global_avgpool(x).shape == (2, 8, 1, 1)

    def test_adaptive(self, b):
        x = b.input((2, 8, 14, 14))
        assert b.adaptive_avgpool(x, 6).shape == (2, 8, 6, 6)


class TestLinearAndMatmul:
    def test_linear_shape(self, b):
        x = b.input((4, 10))
        assert b.linear(x, 3).shape == (4, 3)

    def test_linear_flops_gemm(self, b):
        x = b.input((4, 10))
        y = b.linear(x, 3)
        assert b.graph.nodes[y.node_id].flops == 2 * 4 * 10 * 3

    def test_linear_keeps_leading_dims(self, b):
        x = b.input((2, 5, 10))
        assert b.linear(x, 3).shape == (2, 5, 3)

    def test_matmul_shape(self, b):
        a = b.input((2, 3, 4))
        c = b.input((2, 4, 5))
        assert b.matmul(a, c).shape == (2, 3, 5)

    def test_matmul_mismatch_raises(self, b):
        a = b.input((2, 3, 4))
        c = b.input((2, 3, 5))
        with pytest.raises(ValueError):
            b.matmul(a, c)

    def test_matmul_flops(self, b):
        a = b.input((2, 3, 4))
        c = b.input((2, 4, 5))
        y = b.matmul(a, c)
        assert b.graph.nodes[y.node_id].flops == 2 * 2 * 3 * 5 * 4


class TestShapeOps:
    def test_flatten(self, b):
        x = b.input((2, 3, 4, 5))
        assert b.flatten(x).shape == (2, 60)

    def test_reshape_checks_numel(self, b):
        x = b.input((2, 6))
        assert b.reshape(x, (3, 4)).shape == (3, 4)
        with pytest.raises(ValueError):
            b.reshape(x, (5, 5))

    def test_transpose(self, b):
        x = b.input((2, 3, 4))
        assert b.transpose(x, (2, 0, 1)).shape == (4, 2, 3)

    def test_concat(self, b):
        xs = [b.input((2, 3)), b.input((2, 5))]
        assert b.concat(xs, axis=1).shape == (2, 8)

    def test_concat_mismatch_raises(self, b):
        xs = [b.input((2, 3)), b.input((4, 5))]
        with pytest.raises(ValueError):
            b.concat(xs, axis=1)

    def test_add_requires_same_shape(self, b):
        with pytest.raises(ValueError):
            b.add(b.input((2, 3)), b.input((2, 4)))

    def test_reduce_mean(self, b):
        x = b.input((2, 7, 3))
        assert b.reduce_mean(x, axis=1).shape == (2, 3)


class TestSequenceOps:
    def test_embedding(self, b):
        x = b.input((4, 10))
        assert b.embedding(x, 1000, 16).shape == (4, 10, 16)

    def test_lstm_shape_and_flops(self, b):
        x = b.input((4, 10, 8))
        emb = b.embedding(x, 10, 8) if False else x
        y = b.lstm(x, 16, num_layers=2)
        assert y.shape == (4, 10, 16)
        assert b.graph.nodes[y.node_id].flops > 0

    def test_rnn_cheaper_than_lstm(self, b):
        x1 = b.input((4, 10, 8))
        lstm = b.lstm(x1, 16)
        x2 = b.input((4, 10, 8))
        rnn = b.rnn(x2, 16)
        assert b.graph.nodes[rnn.node_id].flops < \
            b.graph.nodes[lstm.node_id].flops


class TestEdgesAndFinish:
    def test_edges_carry_source_shapes(self, b):
        x = b.input((1, 3, 8, 8))
        b.conv2d(x, 4, 3, padding=1)
        edge = b.graph.edges[0]
        assert edge.tensor_shape == (1, 3, 8, 8)
        assert edge.edge_type == "forward"

    def test_finish_validates(self, b):
        x = b.input((1, 3, 8, 8))
        b.relu(x)
        g = b.finish()
        assert g.num_nodes == 2

    def test_two_input_op_has_two_edges(self, b):
        a = b.input((2, 3))
        c = b.input((2, 3))
        b.add(a, c)
        assert b.graph.num_edges == 2


class TestFlopsRegistry:
    def test_every_op_type_has_index(self):
        for op in OP_TYPES:
            assert OP_TYPES[op_type_index(op)] == op

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            op_flops("FancyNewOp", {}, [], (1,))

    def test_elementwise_scales_with_numel(self):
        small = op_flops("ReLU", {}, [(10,)], (10,))
        big = op_flops("ReLU", {}, [(1000,)], (1000,))
        assert big == 100 * small

    @given(st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_gemm_flops_bilinear(self, m, n):
        f = op_flops("Gemm", {"in_features": 8, "out_features": n},
                     [(m, 8)], (m, n))
        assert f == 2 * m * n * 8
