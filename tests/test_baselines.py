"""Baseline predictor tests (MLP, LSTM, Transformer, DNNPerf, BRP-NAS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (BRPNASPredictor, DNNPerfPredictor, GCNLayer,
                             LSTMPredictor, MLPPredictor,
                             TransformerPredictor)
from repro.core import TrainConfig, Trainer
from repro.features import encode_graph
from repro.gpu import A100
from repro.models import ModelConfig, build_model
from repro.tensor import Tensor

SMALL_BASELINES = [
    (MLPPredictor, dict(widths=(32, 32))),
    (LSTMPredictor, dict(hidden=16)),
    (TransformerPredictor, dict(dim=16, ffn_dim=32, num_heads=2)),
    (DNNPerfPredictor, dict(hidden=16)),
    (BRPNASPredictor, dict(hidden=16)),
]


@pytest.mark.parametrize("cls,kwargs", SMALL_BASELINES)
def test_forward_returns_scalar(cls, kwargs, tiny_dataset):
    model = cls(seed=0, **kwargs)
    out = model(tiny_dataset[0].features)
    assert out.shape == ()
    assert np.isfinite(out.data)


@pytest.mark.parametrize("cls,kwargs", SMALL_BASELINES)
def test_trains_and_improves(cls, kwargs, tiny_dataset):
    model = cls(seed=0, **kwargs)
    trainer = Trainer(model, TrainConfig(epochs=10, lr=1e-3, batch_size=4))
    before = trainer.evaluate(tiny_dataset)["mse"]
    trainer.fit(tiny_dataset)
    after = trainer.evaluate(tiny_dataset)["mse"]
    assert after < before


@pytest.mark.parametrize("cls,kwargs", SMALL_BASELINES)
def test_seeded_construction(cls, kwargs, tiny_dataset):
    a = cls(seed=4, **kwargs)
    b = cls(seed=4, **kwargs)
    s = tiny_dataset[0].features
    from repro.tensor import no_grad
    with no_grad():
        assert float(a(s).data) == float(b(s).data)


class TestSubsampling:
    def test_lstm_caps_sequence(self, tiny_dataset):
        model = LSTMPredictor(seed=0, hidden=8, max_nodes=4)
        out = model(tiny_dataset[0].features)  # graphs have >4 nodes
        assert np.isfinite(out.data)

    def test_transformer_caps_sequence(self, tiny_dataset):
        model = TransformerPredictor(seed=0, dim=16, ffn_dim=16,
                                     num_heads=2, max_nodes=4)
        assert np.isfinite(model(tiny_dataset[0].features).data)


class TestBRPNASBlindness:
    def test_ignores_runtime_features(self):
        """BRP-NAS sees only graph structure: two batch sizes of the same
        architecture must give the *same* prediction (the paper's stated
        limitation)."""
        model = BRPNASPredictor(seed=0, hidden=16)
        a = encode_graph(build_model("lenet", ModelConfig(batch_size=16)),
                         A100)
        b = encode_graph(build_model("lenet", ModelConfig(batch_size=128)),
                         A100)
        from repro.tensor import no_grad
        with no_grad():
            assert float(model(a).data) == pytest.approx(float(model(b).data))

    def test_distinguishes_architectures(self):
        model = BRPNASPredictor(seed=0, hidden=16)
        a = encode_graph(build_model("lenet", ModelConfig(batch_size=16)),
                         A100)
        b = encode_graph(build_model("alexnet", ModelConfig(batch_size=16)),
                         A100)
        from repro.tensor import no_grad
        with no_grad():
            assert float(model(a).data) != pytest.approx(float(model(b).data))


class TestDNNPerfScaleSensitivity:
    def test_sum_readout_scales_with_graph_size(self, rng):
        """DNNPerf's sum readout makes its latent grow with node count —
        the mechanism behind its large unseen-model errors."""
        model = DNNPerfPredictor(seed=0, hidden=16)
        small = encode_graph(build_model("lenet", ModelConfig(batch_size=16)),
                             A100)
        big = encode_graph(build_model("vgg-16", ModelConfig(batch_size=16)),
                           A100)
        from repro.tensor import no_grad
        with no_grad():
            p_small = abs(float(model(small).data))
            p_big = abs(float(model(big).data))
        assert p_big != pytest.approx(p_small, rel=0.01)


class TestGCNLayer:
    def test_shape(self, rng):
        layer = GCNLayer(6, 8, rng)
        h = Tensor(rng.normal(size=(4, 6)))
        edges = np.array([[0, 1, 2], [1, 2, 3]], dtype=np.intp)
        assert layer(h, edges).shape == (4, 8)

    def test_handles_isolated_nodes(self, rng):
        layer = GCNLayer(6, 8, rng)
        h = Tensor(rng.normal(size=(3, 6)))
        out = layer(h, np.zeros((2, 0), dtype=np.intp))
        assert out.shape == (3, 8)
        assert np.all(np.isfinite(out.data))

    def test_output_nonnegative(self, rng):
        layer = GCNLayer(6, 8, rng)
        h = Tensor(rng.normal(size=(4, 6)))
        edges = np.array([[0, 1], [1, 2]], dtype=np.intp)
        assert np.all(layer(h, edges).data >= 0)  # ReLU
