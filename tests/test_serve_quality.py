"""Prediction-quality telemetry and the chaos-serve acceptance run.

The QualityMonitor closes the correctness loop online: deterministic
sampling of served predictions, background re-labeling against a ground
truth, rolling MAPE drift score with a threshold alarm.  The chaos test
is the PR's acceptance gate: a serve run with injected dispatch faults
and queue-full sheds (with a scheduler chaos simulation alongside) must
export a Chrome trace in which every traced request still renders as a
single connected span tree."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro import obs
from repro.core import DNNOccu, DNNOccuConfig
from repro.gpu import get_device, profile_graph
from repro.models import ModelConfig, build_model
from repro.obs.context import reset_ids
from repro.obs.summary import request_groups, span_tree
from repro.resilience import FaultConfig, FaultInjector
from repro.sched import OccuPacking, generate_workload, simulate
from repro.serve import PredictorService, QualityMonitor, simulator_labeler

A100 = get_device("A100")


def _model(seed: int = 7) -> DNNOccu:
    return DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=seed)


def _graph(name: str = "lenet", batch: int = 8):
    return build_model(name, ModelConfig(batch_size=batch))


# --------------------------------------------------------------------- #
# QualityMonitor unit behaviour (fake labelers: no simulator in the loop)
# --------------------------------------------------------------------- #

class TestQualityMonitor:
    def test_sampling_cadence_is_deterministic(self):
        with QualityMonitor(labeler=lambda g, d: 0.5,
                            sample_every=4) as qm:
            hits = [qm.offer("g", "d", 0.5) for _ in range(9)]
            assert qm.flush()
        # offers 1, 5, 9 sampled (counted from the first)
        assert hits == [True, False, False, False] * 2 + [True]
        stats = qm.stats()
        assert stats["offered"] == 9
        assert stats["sampled"] == stats["labeled"] == 3

    def test_mape_and_residuals_exact(self):
        with QualityMonitor(labeler=lambda g, d: 0.5,
                            sample_every=1) as qm:
            qm.offer("g", "d", 0.6)   # ape 0.2, residual +0.1
            qm.offer("g", "d", 0.4)   # ape 0.2, residual -0.1
            assert qm.flush()
            stats = qm.stats()
        assert stats["mape"] == pytest.approx(0.2)
        assert stats["mean_residual"] == pytest.approx(0.0)
        assert stats["max_abs_residual"] == pytest.approx(0.1)
        assert qm.drift_score() == pytest.approx(0.2)

    def test_drift_alarm_after_min_samples(self):
        with obs.observed() as (_t, registry):
            with QualityMonitor(labeler=lambda g, d: 0.5,
                                sample_every=1, drift_threshold=0.15,
                                min_samples=3) as qm:
                for _ in range(5):
                    qm.offer("g", "d", 0.9)  # ape = 0.8 >> threshold
                assert qm.flush()
                stats = qm.stats()
            counts = {m.name: m.value for m in registry
                      if m.kind == "counter"}
        # alarms only once the window holds min_samples labels
        assert stats["alarms"] == 3
        assert counts["serve_quality_drift_alarms_total"] == 3
        assert counts["serve_quality_samples_total"] == 5

    def test_no_alarm_below_threshold(self):
        with QualityMonitor(labeler=lambda g, d: 0.5, sample_every=1,
                            drift_threshold=0.15, min_samples=1) as qm:
            for _ in range(5):
                qm.offer("g", "d", 0.52)  # ape 0.04
            assert qm.flush()
            assert qm.stats()["alarms"] == 0

    def test_calibration_bins_track_pred_vs_actual(self):
        with QualityMonitor(labeler=lambda g, d: 0.4, sample_every=1,
                            calibration_bins=10) as qm:
            qm.offer("g", "d", 0.35)
            qm.offer("g", "d", 0.38)
            qm.offer("g", "d", 0.95)
            assert qm.flush()
            cal = qm.calibration()
        assert len(cal) == 10
        bin3 = cal[3]  # [0.3, 0.4)
        assert bin3["count"] == 2
        assert bin3["mean_predicted"] == pytest.approx(0.365)
        assert bin3["mean_actual"] == pytest.approx(0.4)
        assert cal[9]["count"] == 1
        assert cal[0]["count"] == 0 and "mean_predicted" not in cal[0]

    def test_queue_overflow_drops_instead_of_blocking(self):
        release = threading.Event()

        def slow_labeler(graph, device):
            release.wait(5.0)
            return 0.5

        with QualityMonitor(labeler=slow_labeler, sample_every=1,
                            queue_depth=1) as qm:
            for _ in range(6):
                qm.offer("g", "d", 0.5)  # worker wedged on the first
            release.set()
            assert qm.flush()
            stats = qm.stats()
        assert stats["dropped"] > 0
        assert stats["labeled"] == stats["sampled"] - stats["dropped"]

    def test_labeler_failure_counts_and_continues(self):
        calls = []

        def flaky(graph, device):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("boom")
            return 0.5

        with QualityMonitor(labeler=flaky, sample_every=1) as qm:
            qm.offer("g", "d", 0.5)
            qm.offer("g", "d", 0.5)
            assert qm.flush()
            stats = qm.stats()
        assert stats["labeled"] == 2  # failure consumed, not wedged
        assert stats["mape"] == pytest.approx(0.0)

    def test_drift_score_nan_before_any_label(self):
        with QualityMonitor(labeler=lambda g, d: 0.5) as qm:
            assert math.isnan(qm.drift_score())
            assert math.isnan(qm.stats()["mape"])

    def test_invalid_knobs_rejected(self):
        for kw in (dict(sample_every=0), dict(window=0),
                   dict(calibration_bins=0)):
            with pytest.raises(ValueError):
                QualityMonitor(labeler=lambda g, d: 0.5, **kw)

    def test_offer_after_close_is_dropped(self):
        qm = QualityMonitor(labeler=lambda g, d: 0.5, sample_every=1)
        qm.close()
        assert qm.offer("g", "d", 0.5) is False
        assert qm.stats()["dropped"] == 1

    def test_simulator_labeler_is_the_training_oracle(self):
        graph = _graph()
        assert simulator_labeler(graph, A100) == \
            pytest.approx(profile_graph(graph, A100).occupancy)


# --------------------------------------------------------------------- #
# Service integration
# --------------------------------------------------------------------- #

class TestServiceQualityIntegration:
    def test_every_served_prediction_offered(self):
        with QualityMonitor(labeler=simulator_labeler,
                            sample_every=1) as qm:
            with PredictorService(_model(), A100, quality=qm) as svc:
                for name in ("lenet", "alexnet"):
                    svc.predict(_graph(name))
                svc.predict(_graph("lenet"))  # cache hit still offered
                assert qm.flush()
                stats = svc.stats()
        assert stats["quality"]["offered"] == 3
        assert stats["quality"]["labeled"] == 3
        # untrained-model MAPE is large but must be finite and real
        assert math.isfinite(stats["quality"]["mape"])
        assert stats["quality"]["mape"] > 0.0

    def test_predict_many_offers_bulk_results(self):
        graphs = [_graph(n, b) for n in ("lenet", "rnn")
                  for b in (4, 8)]
        with QualityMonitor(labeler=lambda g, d: 0.5,
                            sample_every=1) as qm:
            with PredictorService(_model(), A100, quality=qm) as svc:
                svc.predict_many(graphs)
                assert qm.flush()
        assert qm.stats()["offered"] == len(graphs)

    def test_drift_alarm_fires_for_biased_service(self):
        # A labeler that contradicts the model by a wide margin: the
        # rolling MAPE must cross the threshold and alarm.
        with obs.observed() as (_t, registry):
            with QualityMonitor(labeler=lambda g, d: 1e-6,
                                sample_every=1, drift_threshold=0.5,
                                min_samples=2) as qm:
                with PredictorService(_model(), A100,
                                      quality=qm) as svc:
                    for name in ("lenet", "alexnet", "rnn"):
                        svc.predict(_graph(name))
                    assert qm.flush()
            counts = {m.name: m.value for m in registry
                      if m.kind == "counter"}
        assert qm.stats()["alarms"] >= 1
        assert counts["serve_quality_drift_alarms_total"] >= 1

    def test_shed_predictions_are_offered_too(self):
        graphs = [_graph(n, b) for n in ("lenet", "alexnet")
                  for b in (2, 4, 8)]
        with QualityMonitor(labeler=lambda g, d: 1.0,
                            sample_every=1) as qm:
            with PredictorService(_model(), A100, quality=qm,
                                  max_batch_size=2, deadline_s=60.0,
                                  max_queue_depth=2) as svc:
                svc.batcher.pause()
                tickets = [svc.predict_async(g) for g in graphs]
                svc.batcher.resume()
                for t in tickets:
                    t.result()
                assert qm.flush()
        # every request (queued or shed) produced a value and an offer
        assert qm.stats()["offered"] == len(graphs)


# --------------------------------------------------------------------- #
# Chaos acceptance: faults + sheds, every request tree still connected
# --------------------------------------------------------------------- #

class _FlakyModel:
    """Delegates to a real model, failing every ``fail_every``-th forward."""

    def __init__(self, inner, fail_every: int = 4):
        self.inner = inner
        self.fail_every = fail_every
        self.calls = 0

    def _tick(self) -> None:
        self.calls += 1
        if self.calls % self.fail_every == 0:
            raise RuntimeError("injected forward fault")

    def predict(self, feats):
        self._tick()
        return self.inner.predict(feats)

    def predict_batch(self, feats_list):
        self._tick()
        return self.inner.predict_batch(feats_list)


class TestChaosAcceptance:
    def test_chaos_serve_trace_stays_connected(self, tmp_path):
        reset_ids()
        model = _FlakyModel(_model(), fail_every=3)
        graphs = [_graph(n, b)
                  for n in ("lenet", "alexnet", "rnn", "lstm")
                  for b in (2, 4, 8)]
        with obs.observed() as (tracer, registry):
            # A scheduler chaos run shares the observed scope: the
            # FaultInjector is live while serve requests are traced.
            jobs = generate_workload(("lenet", "alexnet"), A100, 4,
                                     seed=5, iterations_range=(50, 100))
            simulate(jobs, 2, OccuPacking(),
                     faults=FaultInjector(FaultConfig(crash_prob=0.3), 5))
            with PredictorService(model, A100, max_batch_size=2,
                                  deadline_s=60.0,
                                  max_queue_depth=2) as svc:
                svc.batcher.pause()  # force queue-full sheds
                tickets = [svc.predict_async(g) for g in graphs]
                svc.batcher.resume()
                errors = 0
                for t in tickets:
                    try:
                        t.result(timeout=10.0)
                    except RuntimeError:
                        errors += 1
                # paired phase: each pair fills a batch and flushes
                # immediately, walking the flaky model into a failing
                # forward without waiting out the long deadline
                for b1, b2 in ((16, 32), (64, 128)):
                    pair = [svc.predict_async(_graph("vgg-11", b1)),
                            svc.predict_async(_graph("vgg-11", b2))]
                    for t in pair:
                        try:
                            t.result(timeout=10.0)
                        except RuntimeError:
                            errors += 1
                flight = svc.flight.to_dicts()
            payload = obs.export_chrome_trace(tracer, registry,
                                              flight=flight)

        path = tmp_path / "chaos.json"
        path.write_text(payload)
        trace = obs.load_trace_file(str(path))

        outcomes = {rec["outcome"] for rec in flight}
        assert outcomes == {"served", "shed", "error"}
        assert errors > 0  # injected faults actually failed tickets
        counts = {m.name: m.value for m in registry
                  if m.kind == "counter"}
        assert counts["serve_dispatch_errors_total"] == errors
        assert counts["serve_shed_total"] == len(graphs) - 2

        groups = request_groups(trace)
        assert len(groups) >= len(graphs)  # serve + any sched requests
        disconnected = [rid for rid, evs in groups.items()
                        if not span_tree(evs)["connected"]]
        assert disconnected == []

        # shed and dispatched requests alike keep their span shapes
        names_by_rid = {rid: {e["name"] for e in evs}
                        for rid, evs in groups.items()}
        assert any("serve.fallback" in names
                   for names in names_by_rid.values())
        assert any("serve.resolve" in names
                   for names in names_by_rid.values())

    def test_sched_simulate_requests_share_one_trace(self):
        reset_ids()
        with obs.observed() as (tracer, _registry):
            with PredictorService(_model(), A100) as svc:
                jobs = generate_workload(("lenet", "alexnet"), A100, 4,
                                         seed=5, predictor=svc,
                                         iterations_range=(50, 100))
                simulate(jobs, 2, OccuPacking())
            trace = json.loads(obs.export_chrome_trace(tracer))
        sim_events = [e for e in trace["traceEvents"]
                      if e["name"] == "sched.simulate"]
        assert len(sim_events) == 1
        # the simulate wrapper opened a scope, so its request ids minted
        # under one trace id
        assert sim_events[0]["args"]["trace_id"].startswith("trace-")
