"""Shared fixtures: small cached datasets so the suite stays fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.gpu import A100, P40


@pytest.fixture(scope="session")
def tiny_dataset():
    """12 small CNN samples on A100 (session-cached)."""
    return generate_dataset(["lenet", "alexnet"], [A100],
                            configs_per_model=6, seed=7)


@pytest.fixture(scope="session")
def mixed_dataset():
    """A cross-family, cross-device dataset (session-cached)."""
    return generate_dataset(["lenet", "rnn", "vgg-11"], [A100, P40],
                            configs_per_model=3, seed=11)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session", autouse=True)
def _lockwatch_inversion_gate():
    """Under REPRO_LOCKWATCH=1, fail the session on any observed lock-order
    inversion (see docs/concurrency.md)."""
    yield
    from repro.lint.sanitizer import current_watch

    watch = current_watch()
    if watch is not None:
        assert watch.inversions() == [], (
            "LockWatch observed lock-order inversions during the test "
            f"session: {watch.inversions()}"
        )
