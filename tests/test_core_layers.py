"""Core-layer tests: ANEE, Graphormer (SPD), Set Transformer decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (ANEELayer, GraphormerLayer, MAB, MAX_SPD, PMA, SAB,
                        SetTransformerDecoder, spatial_encoding)
from repro.tensor import Tensor


@pytest.fixture()
def chain_edges():
    # 0 -> 1 -> 2 -> 3
    return np.array([[0, 1, 2], [1, 2, 3]], dtype=np.intp)


class TestANEE:
    def test_output_shapes(self, rng, chain_edges):
        layer = ANEELayer(node_in=6, edge_in=3, hidden=8, rng=rng)
        h = Tensor(rng.normal(size=(4, 6)))
        e = Tensor(rng.normal(size=(3, 3)))
        h2, e2 = layer(h, e, chain_edges)
        assert h2.shape == (4, 8)
        assert e2.shape == (3, 8)

    def test_edge_states_bounded_by_sigmoid(self, rng, chain_edges):
        layer = ANEELayer(6, 3, 8, rng)
        _, e2 = layer(Tensor(rng.normal(size=(4, 6)) * 5),
                      Tensor(rng.normal(size=(3, 3)) * 5), chain_edges)
        assert np.all((e2.data > 0) & (e2.data < 1))

    def test_messages_follow_edges(self, rng):
        # Node 3 has no incoming edges -> aggregation is exactly zero.
        layer = ANEELayer(4, 2, 8, rng)
        edges = np.array([[0, 1], [1, 2]], dtype=np.intp)
        h = Tensor(rng.normal(size=(4, 4)))
        e = Tensor(rng.normal(size=(2, 2)))
        h2, _ = layer(h, e, edges)
        np.testing.assert_allclose(h2.data[3], 0.0)
        assert np.any(h2.data[1] != 0.0)

    def test_empty_edges_handled(self, rng):
        layer = ANEELayer(4, 2, 8, rng)
        h = Tensor(rng.normal(size=(3, 4)))
        e = Tensor(np.zeros((0, 2)))
        h2, e2 = layer(h, e, np.zeros((2, 0), dtype=np.intp))
        assert h2.shape == (3, 8)
        assert e2.shape == (0, 2)

    def test_gradients_reach_all_weights(self, rng, chain_edges):
        layer = ANEELayer(6, 3, 8, rng)
        h = Tensor(rng.normal(size=(4, 6)))
        e = Tensor(rng.normal(size=(3, 3)))
        h2, e2 = layer(h, e, chain_edges)
        (h2.sum() + e2.sum()).backward()
        for p in layer.parameters():
            assert p.grad is not None


class TestSpatialEncoding:
    def test_chain_distances(self, chain_edges):
        spd = spatial_encoding(4, chain_edges)
        assert spd[0, 1] == 1 and spd[0, 2] == 2 and spd[0, 3] == 3
        # Undirected: symmetric.
        np.testing.assert_array_equal(spd, spd.T)
        assert np.all(np.diag(spd) == 0)

    def test_distance_clipped(self):
        n = 20
        edges = np.array([list(range(n - 1)), list(range(1, n))],
                         dtype=np.intp)
        spd = spatial_encoding(n, edges)
        assert spd.max() == MAX_SPD

    def test_unreachable_bucket(self):
        # Two disconnected components.
        edges = np.array([[0], [1]], dtype=np.intp)
        spd = spatial_encoding(4, edges)
        assert spd[0, 2] == MAX_SPD + 1

    def test_no_edges(self):
        spd = spatial_encoding(3, np.zeros((2, 0), dtype=np.intp))
        assert np.all(np.diag(spd) == 0)
        assert spd[0, 1] == MAX_SPD + 1

    def test_empty_graph(self):
        assert spatial_encoding(0, np.zeros((2, 0), dtype=np.intp)).shape \
            == (0, 0)


class TestGraphormerLayer:
    def test_shape_preserved(self, rng, chain_edges):
        layer = GraphormerLayer(8, 2, 16, rng)
        spd = spatial_encoding(4, chain_edges)
        out = layer(Tensor(rng.normal(size=(4, 8))), spd)
        assert out.shape == (4, 8)

    def test_spd_bias_changes_attention(self, rng, chain_edges):
        layer = GraphormerLayer(8, 2, 16, rng)
        spd = spatial_encoding(4, chain_edges)
        x = Tensor(rng.normal(size=(4, 8)))
        base = layer(x, spd).data.copy()
        layer.spd_bias.data[:] = np.linspace(-5, 5, len(layer.spd_bias.data))
        biased = layer(x, spd).data
        assert not np.allclose(base, biased)

    def test_bias_gradient_flows(self, rng, chain_edges):
        layer = GraphormerLayer(8, 2, 16, rng)
        spd = spatial_encoding(4, chain_edges)
        layer(Tensor(rng.normal(size=(4, 8))), spd).sum().backward()
        assert layer.spd_bias.grad is not None
        assert np.any(layer.spd_bias.grad != 0)


class TestSetTransformer:
    def test_mab_shape(self, rng):
        mab = MAB(8, 2, rng)
        x = Tensor(rng.normal(size=(3, 8)))
        y = Tensor(rng.normal(size=(7, 8)))
        assert mab(x, y).shape == (3, 8)

    def test_sab_shape(self, rng):
        sab = SAB(8, 2, rng)
        assert sab(Tensor(rng.normal(size=(5, 8)))).shape == (5, 8)

    def test_pma_pools_to_k(self, rng):
        pma = PMA(8, 2, k=3, rng=rng)
        assert pma(Tensor(rng.normal(size=(11, 8)))).shape == (3, 8)

    def test_decoder_output_shape(self, rng):
        dec = SetTransformerDecoder(8, 2, k=1, num_sabs=2, rng=rng)
        assert dec(Tensor(rng.normal(size=(9, 8)))).shape == (1, 8)

    def test_decoder_permutation_invariant(self, rng):
        # PMA pools a *set*: permuting input rows must not change output.
        dec = SetTransformerDecoder(8, 2, k=1, num_sabs=1, rng=rng)
        x = rng.normal(size=(7, 8))
        perm = rng.permutation(7)
        out1 = dec(Tensor(x)).data
        out2 = dec(Tensor(x[perm])).data
        np.testing.assert_allclose(out1, out2, atol=1e-9)

    def test_decoder_size_invariance_of_output_shape(self, rng):
        dec = SetTransformerDecoder(8, 2, k=2, num_sabs=1, rng=rng)
        for n in (1, 5, 50):
            assert dec(Tensor(rng.normal(size=(n, 8)))).shape == (2, 8)
