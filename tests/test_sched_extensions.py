"""Scheduler extension tests: memory-aware admission, placement
strategies, Poisson arrivals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import P40
from repro.sched import (Job, OccuPacking, SlotPacking, generate_workload,
                         simulate)


def job(jid=0, dur=10.0, occ=0.2, nvml=0.5, mem=0, arrival=0.0):
    return Job(job_id=jid, model_name="m", duration_s=dur, occupancy=occ,
               nvml_utilization=nvml, memory_bytes=mem, arrival_s=arrival)


class TestMemoryAwareAdmission:
    GIB = 2**30

    def test_memory_blocks_colocation(self):
        p = OccuPacking(cap=1.0, memory_capacity_bytes=10 * self.GIB)
        big = job(0, mem=8 * self.GIB)
        other = job(1, mem=4 * self.GIB)
        assert p.admits(big, [])
        assert not p.admits(other, [big])

    def test_memory_allows_when_fits(self):
        p = OccuPacking(cap=1.0, memory_capacity_bytes=10 * self.GIB)
        a = job(0, mem=4 * self.GIB)
        b = job(1, mem=4 * self.GIB)
        assert p.admits(b, [a])

    def test_no_memory_limit_by_default(self):
        p = OccuPacking(cap=1.0)
        a = job(0, mem=10**15)
        b = job(1, mem=10**15)
        assert p.admits(b, [a])

    def test_simulation_respects_memory(self):
        cap = 10 * self.GIB
        jobs = [job(i, dur=5.0, occ=0.1, mem=6 * self.GIB)
                for i in range(2)]
        p = OccuPacking(cap=1.0, memory_capacity_bytes=cap)
        res = simulate(jobs, 1, p)
        # Cannot co-locate: serial execution.
        assert res.makespan_s == pytest.approx(10.0)

    def test_workload_jobs_carry_memory(self):
        jobs = generate_workload(["lenet"], P40, 2, seed=0)
        assert all(j.memory_bytes > 0 for j in jobs)


class TestPlacementStrategies:
    def _jobs(self):
        return [job(i, dur=10.0, occ=0.3) for i in range(4)]

    def test_unknown_placement_raises(self):
        with pytest.raises(ValueError):
            simulate(self._jobs(), 2, OccuPacking(), placement="random")

    def test_worst_fit_spreads(self):
        jobs = [job(0, occ=0.3), job(1, occ=0.3)]
        simulate(jobs, 2, OccuPacking(), placement="worst-fit")
        # Two GPUs, two jobs, worst-fit: one job each.
        assert jobs[0].gpu_id != jobs[1].gpu_id

    def test_best_fit_consolidates(self):
        jobs = [job(0, occ=0.3, dur=100.0), job(1, occ=0.3, dur=100.0)]
        simulate(jobs, 2, OccuPacking(), placement="best-fit")
        # Best-fit stacks the second job on the already-loaded GPU.
        assert jobs[0].gpu_id == jobs[1].gpu_id

    def test_first_fit_uses_lowest_index(self):
        jobs = [job(0, occ=0.3)]
        simulate(jobs, 4, OccuPacking(), placement="first-fit")
        assert jobs[0].gpu_id == 0

    def test_all_strategies_complete_work(self):
        for placement in ("first-fit", "best-fit", "worst-fit"):
            jobs = self._jobs()
            res = simulate(jobs, 2, OccuPacking(), placement=placement)
            assert all(j.finish_s is not None for j in res.jobs)


class TestClusterMetrics:
    def test_queue_delay_serial(self):
        jobs = [job(0, dur=5.0), job(1, dur=5.0)]
        res = simulate(jobs, 1, SlotPacking())
        # First job starts immediately; second waits 5 s -> mean 2.5 s.
        assert res.avg_queue_delay == pytest.approx(2.5)

    def test_queue_delay_zero_with_enough_gpus(self):
        jobs = [job(i, dur=5.0) for i in range(3)]
        res = simulate(jobs, 3, SlotPacking())
        assert res.avg_queue_delay == pytest.approx(0.0)

    def test_jct_percentiles_ordered(self):
        jobs = [job(i, dur=float(i + 1)) for i in range(6)]
        res = simulate(jobs, 2, SlotPacking())
        assert res.jct_percentile(50) <= res.jct_percentile(95)
        assert res.jct_percentile(100) == pytest.approx(
            max(j.jct for j in res.jobs))


class TestPoissonArrivals:
    def test_default_all_arrive_at_zero(self):
        jobs = generate_workload(["lenet"], P40, 3, seed=0)
        assert all(j.arrival_s == 0.0 for j in jobs)

    def test_poisson_arrivals_increase(self):
        jobs = generate_workload(["lenet"], P40, 5, seed=0,
                                 arrival_rate_per_s=0.5)
        arrivals = [j.arrival_s for j in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0.0

    def test_arrival_rate_controls_spacing(self):
        fast = generate_workload(["lenet"], P40, 6, seed=1,
                                 arrival_rate_per_s=10.0)
        slow = generate_workload(["lenet"], P40, 6, seed=1,
                                 arrival_rate_per_s=0.1)
        assert slow[-1].arrival_s > fast[-1].arrival_s

    def test_simulation_honours_arrivals(self):
        jobs = [job(0, dur=2.0), job(1, dur=2.0, arrival=50.0)]
        res = simulate(jobs, 1, SlotPacking())
        assert res.makespan_s == pytest.approx(52.0)
        # The cluster idles between the jobs.
        assert res.busy_integral_s == pytest.approx(4.0)
