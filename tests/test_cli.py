"""CLI tests (profile / predict / schedule / lint subcommands)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_args(self):
        args = build_parser().parse_args(
            ["profile", "--model", "lenet", "--batch", "16"])
        assert args.command == "profile"
        assert args.batch == 16

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--model", "resnet-101"])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.gpus == 4 and args.device == "P40"


class TestCommands:
    def test_profile_runs(self, capsys):
        assert main(["profile", "--model", "lenet", "--batch", "16"]) == 0
        out = capsys.readouterr().out
        assert "GPU occupancy" in out
        assert "NVML utilization" in out
        assert "limiter" in out

    def test_profile_device_selection(self, capsys):
        main(["profile", "--model", "lenet", "--device", "p40"])
        assert "P40" in capsys.readouterr().out

    def test_predict_runs(self, capsys):
        rc = main(["predict", "--target", "alexnet", "--batch", "16",
                   "--train-models", "lenet",
                   "--configs-per-model", "3", "--epochs", "3",
                   "--hidden", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted occupancy" in out
        assert "relative error" in out

    def test_schedule_runs(self, capsys):
        rc = main(["schedule", "--gpus", "2", "--jobs", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "occu-packing" in out
        assert "slot-packing" in out

    def test_trace_writes_json(self, tmp_path, capsys):
        import json
        out = str(tmp_path / "trace.json")
        rc = main(["trace", "--model", "lenet", "--batch", "8",
                   "--out", out])
        assert rc == 0
        trace = json.loads(open(out).read())
        assert trace["traceEvents"]

    def test_dataset_saves_npz(self, tmp_path, capsys):
        from repro.data import load_dataset
        out = str(tmp_path / "ds.npz")
        rc = main(["dataset", "--models", "lenet",
                   "--configs-per-model", "2", "--out", out])
        assert rc == 0
        assert len(load_dataset(out)) == 2


class TestLintExitCodeContract:
    """`repro lint` exit codes: 0 clean, 1 ERROR diagnostics, 2 usage."""

    @staticmethod
    def _graph_file(tmp_path, corrupt: bool) -> str:
        from repro.models import build_model
        g = build_model("lenet")
        if corrupt:
            g.nodes[1].flops = -5
        path = tmp_path / ("bad.json" if corrupt else "ok.json")
        path.write_text(g.to_json())
        return str(path)

    def test_clean_targets_exit_zero(self, tmp_path, capsys):
        ok = self._graph_file(tmp_path, corrupt=False)
        assert main(["lint", "--model", "lenet", "--registries",
                     "--graph", ok]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_diagnostics_exit_one(self, tmp_path, capsys):
        bad = self._graph_file(tmp_path, corrupt=True)
        assert main(["lint", "--graph", bad]) == 1
        assert "G007" in capsys.readouterr().out

    def test_no_target_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_missing_graph_file_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", "--graph", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unknown_model_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--model", "resnet-101"])
        assert exc.value.code == 2

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        bad = self._graph_file(tmp_path, corrupt=True)
        assert main(["lint", "--graph", bad, "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"]["name"] == "repro-lint"
        assert doc["summary"]["error"] == 1
        assert [d["code"] for d in doc["diagnostics"]] == ["G007"]

    def test_self_lint_runs_clean(self, capsys):
        assert main(["lint", "--self"]) == 0
        assert "0 error(s)" in capsys.readouterr().out


class TestObsSloCommands:
    def test_slo_parser_defaults(self):
        args = build_parser().parse_args(["slo"])
        assert args.requests == 60 and args.device == "A100"
        assert args.window == 30.0 and not args.check

    def test_obs_bench_parser_defaults(self):
        args = build_parser().parse_args(["obs-bench", "--scale", "0.5"])
        assert args.command == "obs-bench"
        assert args.scale == 0.5 and args.out is None and not args.check

    def test_slo_check_passes_on_healthy_run(self, capsys):
        assert main(["slo", "--requests", "6", "--check"]) == 0
        out = capsys.readouterr().out
        assert "6 requests on A100" in out
        assert "serve-p99-latency" in out
        assert "serve-shed-rate" in out

    def test_slo_trace_feeds_obs_request_view(self, tmp_path, capsys):
        out = str(tmp_path / "slo_trace.json")
        assert main(["slo", "--requests", "6", "--out", out]) == 0
        capsys.readouterr()
        assert main(["obs", out, "--requests", "5"]) == 0
        text = capsys.readouterr().out
        assert "flight recorder" in text
        assert "req-" in text
        assert "serve.request" in text

    def test_obs_requests_flag_defaults_off(self, tmp_path, capsys):
        out = str(tmp_path / "slo_trace.json")
        assert main(["slo", "--requests", "4", "--out", out]) == 0
        capsys.readouterr()
        assert main(["obs", out]) == 0
        assert "flight recorder (last" not in capsys.readouterr().out
