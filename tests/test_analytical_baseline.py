"""Tests for the analytical (ridge-regression) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import AnalyticalPredictor
from repro.data import Dataset, generate_dataset
from repro.gpu import A100


class TestAnalyticalPredictor:
    def test_fit_predict_shapes(self, tiny_dataset):
        model = AnalyticalPredictor().fit(tiny_dataset)
        preds = model.predict(tiny_dataset)
        assert preds.shape == (len(tiny_dataset),)
        assert np.all((preds >= 0.0) & (preds <= 1.0))

    def test_fits_training_data_reasonably(self, tiny_dataset):
        model = AnalyticalPredictor().fit(tiny_dataset)
        ev = model.evaluate(tiny_dataset)
        assert ev["mse"] < 0.02

    def test_predict_before_fit_raises(self, tiny_dataset):
        with pytest.raises(RuntimeError):
            AnalyticalPredictor().predict(tiny_dataset)

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            AnalyticalPredictor().fit(Dataset([]))

    def test_invalid_ridge_raises(self):
        with pytest.raises(ValueError):
            AnalyticalPredictor(ridge=0.0)

    def test_stronger_ridge_shrinks_weights(self, tiny_dataset):
        soft = AnalyticalPredictor(ridge=1e-4).fit(tiny_dataset)
        hard = AnalyticalPredictor(ridge=1e3).fit(tiny_dataset)
        assert np.linalg.norm(hard._weights) < np.linalg.norm(soft._weights)

    def test_generalizes_within_family(self, tiny_dataset):
        held_out = generate_dataset(["lenet", "alexnet"], [A100],
                                    configs_per_model=2, seed=123)
        model = AnalyticalPredictor().fit(tiny_dataset)
        ev = model.evaluate(held_out)
        # Coarse but usable on the same model families.
        assert ev["mre_percent"] < 60.0

    def test_deterministic(self, tiny_dataset):
        a = AnalyticalPredictor().fit(tiny_dataset).predict(tiny_dataset)
        b = AnalyticalPredictor().fit(tiny_dataset).predict(tiny_dataset)
        np.testing.assert_array_equal(a, b)
