"""DNN-occu model and trainer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from repro.data import Dataset


@pytest.fixture(scope="module")
def small_model():
    return DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=0)


class TestDNNOccuModel:
    def test_prediction_in_unit_interval(self, small_model, tiny_dataset):
        for s in list(tiny_dataset)[:4]:
            p = small_model.predict(s.features)
            assert 0.0 < p < 1.0

    def test_forward_returns_scalar_tensor(self, small_model, tiny_dataset):
        out = small_model(tiny_dataset[0].features)
        assert out.shape == ()

    def test_paper_config(self):
        cfg = DNNOccuConfig.paper()
        assert cfg.hidden == 256
        assert cfg.anee_layers == 1
        assert cfg.graphormer_layers == 2
        assert cfg.set_decoder_sabs == 2

    def test_config_controls_depth(self):
        m = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2,
                                  graphormer_layers=3, anee_layers=2))
        assert len(m.graphormer) == 3
        assert len(m.anee) == 2

    def test_seed_reproducibility(self, tiny_dataset):
        a = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=3)
        b = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=3)
        s = tiny_dataset[0].features
        assert a.predict(s) == b.predict(s)

    def test_different_graphs_different_predictions(self, small_model,
                                                    tiny_dataset):
        preds = {round(small_model.predict(s.features), 10)
                 for s in tiny_dataset}
        assert len(preds) > 1

    def test_state_dict_roundtrip(self, tiny_dataset):
        a = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=1)
        b = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=2)
        b.load_state_dict(a.state_dict())
        s = tiny_dataset[0].features
        assert a.predict(s) == b.predict(s)

    def test_spd_cache_reused(self, small_model, tiny_dataset):
        s = tiny_dataset[0].features
        small_model.predict(s)
        cache1 = getattr(s, "_spd_cache")
        small_model.predict(s)
        assert getattr(s, "_spd_cache") is cache1


class TestTrainer:
    def test_training_reduces_loss(self, tiny_dataset):
        model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=0)
        trainer = Trainer(model, TrainConfig(epochs=15, lr=1e-3,
                                             batch_size=4))
        hist = trainer.fit(tiny_dataset)
        assert hist.train_loss[-1] < hist.train_loss[0] * 0.5

    def test_fit_on_empty_dataset_raises(self):
        model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2))
        with pytest.raises(ValueError):
            Trainer(model).fit(Dataset([]))

    def test_predict_shape(self, tiny_dataset):
        model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2))
        preds = Trainer(model).predict(tiny_dataset)
        assert preds.shape == (len(tiny_dataset),)
        assert np.all((preds > 0) & (preds < 1))

    def test_evaluate_keys(self, tiny_dataset):
        model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2))
        ev = Trainer(model).evaluate(tiny_dataset)
        assert set(ev) == {"mre_percent", "mse", "fit_time_s"}
        assert ev["mse"] >= 0
        assert ev["fit_time_s"] == 0.0  # evaluate before any fit

    def test_validation_history(self, tiny_dataset, rng):
        train, val = tiny_dataset.split(0.7, rng)
        model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2))
        trainer = Trainer(model, TrainConfig(epochs=3, lr=1e-3))
        hist = trainer.fit(train, val=val)
        assert len(hist.val_loss) == 3

    def test_training_is_seeded(self, tiny_dataset):
        evals = []
        for _ in range(2):
            model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=0)
            tr = Trainer(model, TrainConfig(epochs=3, lr=1e-3, seed=1))
            tr.fit(tiny_dataset)
            evals.append(tr.evaluate(tiny_dataset)["mse"])
        assert evals[0] == evals[1]

    def test_eval_mode_after_fit(self, tiny_dataset):
        model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2))
        Trainer(model, TrainConfig(epochs=1)).fit(tiny_dataset)
        assert not model.training
