"""Computation-graph IR tests: nodes, edges, validation, serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (ComputationGraph, DataEdge, GraphValidationError,
                         OpNode, tensor_bytes, tensor_numel)


def chain_graph(n: int) -> ComputationGraph:
    g = ComputationGraph("chain")
    for i in range(n):
        g.add_node(OpNode(node_id=i, op_type="ReLU",
                          output_shape=(2, 3), flops=6))
    for i in range(n - 1):
        g.add_edge(DataEdge(src=i, dst=i + 1, tensor_shape=(2, 3)))
    return g


class TestTensorHelpers:
    def test_numel(self):
        assert tensor_numel((2, 3, 4)) == 24
        assert tensor_numel(()) == 1

    def test_bytes_fp32(self):
        assert tensor_bytes((10,)) == 40


class TestGraphConstruction:
    def test_counts(self):
        g = chain_graph(5)
        assert g.num_nodes == 5 and g.num_edges == 4

    def test_duplicate_node_rejected(self):
        g = chain_graph(2)
        with pytest.raises(GraphValidationError):
            g.add_node(OpNode(node_id=0, op_type="ReLU"))

    def test_edge_to_unknown_node_rejected(self):
        g = chain_graph(2)
        with pytest.raises(GraphValidationError):
            g.add_edge(DataEdge(src=0, dst=99))

    def test_self_loop_rejected(self):
        g = chain_graph(2)
        with pytest.raises(GraphValidationError):
            g.add_edge(DataEdge(src=1, dst=1))

    def test_adjacency(self):
        g = chain_graph(3)
        assert g.successors(0) == [1]
        assert g.predecessors(2) == [1]
        assert g.in_edges(1)[0].src == 0
        assert g.out_edges(1)[0].dst == 2


class TestTopologicalOrder:
    def test_chain_order(self):
        assert chain_graph(4).topological_order() == [0, 1, 2, 3]

    def test_cycle_detected(self):
        g = chain_graph(3)
        g.add_edge(DataEdge(src=2, dst=0, tensor_shape=(2, 3)))
        with pytest.raises(GraphValidationError, match="cycle"):
            g.topological_order()

    def test_diamond_respects_dependencies(self):
        g = ComputationGraph("diamond")
        for i in range(4):
            g.add_node(OpNode(node_id=i, op_type="Add", output_shape=(1,)))
        for s, d in ((0, 1), (0, 2), (1, 3), (2, 3)):
            g.add_edge(DataEdge(src=s, dst=d, tensor_shape=(1,)))
        order = g.topological_order()
        pos = {nid: i for i, nid in enumerate(order)}
        assert pos[0] < pos[1] < pos[3] and pos[0] < pos[2] < pos[3]

    @given(st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_order_is_permutation(self, n):
        order = chain_graph(n).topological_order()
        assert sorted(order) == list(range(n))


class TestValidation:
    def test_valid_graph_passes(self):
        chain_graph(3).validate()

    def test_edge_shape_mismatch_caught(self):
        g = chain_graph(2)
        g.edges[0].tensor_shape = (9, 9)
        with pytest.raises(GraphValidationError, match="carries"):
            g.validate()

    def test_negative_cost_caught(self):
        g = chain_graph(2)
        g.nodes[0].flops = -1
        with pytest.raises(GraphValidationError, match="negative"):
            g.validate()


class TestSerialization:
    def test_json_roundtrip(self):
        g = chain_graph(4)
        g2 = ComputationGraph.from_json(g.to_json())
        assert g2.num_nodes == 4 and g2.num_edges == 3
        assert g2.topological_order() == g.topological_order()
        assert g2.nodes[0].op_type == "ReLU"

    def test_node_dict_roundtrip(self):
        node = OpNode(node_id=3, op_type="Conv2d",
                      attrs={"kernel_size": (3, 3)},
                      input_shapes=[(1, 3, 8, 8)],
                      output_shape=(1, 4, 8, 8), flops=100, temp_bytes=50)
        back = OpNode.from_dict(node.to_dict())
        assert back.attrs["kernel_size"] == (3, 3) or \
            tuple(back.attrs["kernel_size"]) == (3, 3)
        assert back.input_shapes == [(1, 3, 8, 8)]

    def test_edge_dict_roundtrip(self):
        e = DataEdge(src=1, dst=2, tensor_shape=(5, 5),
                     edge_type="backward")
        back = DataEdge.from_dict(e.to_dict())
        assert back.edge_type == "backward"
        assert back.tensor_bytes == 100


class TestComposition:
    def test_disjoint_union_counts(self):
        a, b = chain_graph(3), chain_graph(4)
        merged = a.disjoint_union(b)
        assert merged.num_nodes == 7 and merged.num_edges == 5
        merged.validate()

    def test_disjoint_union_does_not_mutate_inputs(self):
        a, b = chain_graph(2), chain_graph(2)
        a.disjoint_union(b)
        assert a.num_nodes == 2 and b.num_nodes == 2

    def test_union_renumbers_second_graph(self):
        a, b = chain_graph(2), chain_graph(2)
        merged = a.disjoint_union(b)
        assert set(merged.nodes) == {0, 1, 2, 3}

    def test_to_networkx(self):
        nxg = chain_graph(3).to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg.number_of_edges() == 2
        assert nxg.nodes[0]["op_type"] == "ReLU"


class TestStats:
    def test_total_flops(self):
        assert chain_graph(5).total_flops() == 30

    def test_op_histogram(self):
        g = chain_graph(3)
        g.add_node(OpNode(node_id=99, op_type="Conv2d"))
        hist = g.op_type_histogram()
        assert hist == {"ReLU": 3, "Conv2d": 1}
