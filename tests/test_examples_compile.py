"""Examples must at least import-compile (full runs are minutes-long)."""

from __future__ import annotations

import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard(path):
    text = path.read_text()
    assert '__name__ == "__main__"' in text
    assert '"""' in text.split("\n", 3)[1] or text.startswith("#!")
