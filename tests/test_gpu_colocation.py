"""Kernel-level co-location simulation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import (A100, P40, calibrate_interference, co_run,
                       pair_slowdown, profile_graph)
from repro.gpu.profiler import KernelRecord, ProfileResult
from repro.models import ModelConfig, build_model
from repro.sched import InterferenceModel


def synthetic_profile(occ: float, duration: float = 1e-3,
                      device: str = "A100", gap: float = 0.0,
                      name: str = "m") -> ProfileResult:
    """One-kernel profile with chosen occupancy/duration/gap."""
    prof = ProfileResult(model_name=name, device_name=device)
    prof.records = [KernelRecord(
        name="k", node_id=0, duration_s=duration, occupancy=occ,
        theoretical_occupancy=occ, limiter="warps", flops=1.0,
        bytes_moved=1.0, count=1)]
    prof.busy_time_s = duration
    prof.wall_time_s = duration + gap
    return prof


@pytest.fixture(scope="module")
def real_profiles():
    cfg = ModelConfig(batch_size=32)
    return [profile_graph(build_model(m, cfg), A100)
            for m in ("alexnet", "vgg-11", "resnet-18")]


class TestCoRun:
    def test_single_stream_unchanged(self):
        p = synthetic_profile(0.5)
        (t,) = co_run([p])
        assert t == pytest.approx(p.wall_time_s)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            co_run([])

    def test_mixed_devices_rejected(self):
        a = synthetic_profile(0.3, device="A100")
        b = synthetic_profile(0.3, device="P40")
        with pytest.raises(ValueError, match="devices"):
            co_run([a, b])

    def test_under_capacity_pays_bandwidth_tax_only(self):
        from repro.gpu import BANDWIDTH_TAX
        a = synthetic_profile(0.3)
        b = synthetic_profile(0.3)
        s_a, s_b = pair_slowdown(a, b)
        expected = 1.0 + BANDWIDTH_TAX * 0.3
        assert s_a == pytest.approx(expected, rel=1e-6)
        assert s_b == pytest.approx(expected, rel=1e-6)

    def test_over_capacity_time_slices(self):
        a = synthetic_profile(0.8)
        b = synthetic_profile(0.8)
        s_a, _ = pair_slowdown(a, b)
        # Over-committed: at least the 1/total slicing factor (1.6x).
        assert s_a > 1.6

    def test_gap_streams_do_not_contend(self):
        # A stream that is all CPU gap leaves the other untouched.
        a = synthetic_profile(0.9)
        idle = synthetic_profile(0.0, duration=1e-9, gap=5e-3)
        s_a, _ = pair_slowdown(a, idle)
        assert s_a == pytest.approx(1.0, abs=1e-6)

    def test_slowdown_monotone_in_co_runner_occupancy(self):
        base = synthetic_profile(0.4)
        slows = [pair_slowdown(base, synthetic_profile(o))[0]
                 for o in (0.1, 0.4, 0.7, 0.9)]
        assert slows == sorted(slows)

    def test_real_profiles_slow_each_other(self, real_profiles):
        a, b = real_profiles[0], real_profiles[1]
        s_a, s_b = pair_slowdown(a, b)
        assert s_a >= 1.0 and s_b >= 1.0
        assert max(s_a, s_b) > 1.0

    def test_three_way_worse_than_two_way(self, real_profiles):
        a, b, c = real_profiles
        two = co_run([a, b])[0]
        three = co_run([a, b, c])[0]
        assert three >= two - 1e-12


class TestCalibration:
    def test_returns_interference_model(self, real_profiles):
        m = calibrate_interference(real_profiles, num_pairs=30)
        assert isinstance(m, InterferenceModel)
        assert m.alpha >= 0.0 and m.beta >= 0.0

    def test_calibrated_alpha_near_bandwidth_tax(self):
        from repro.gpu import BANDWIDTH_TAX
        profs = [synthetic_profile(o) for o in (0.2, 0.3, 0.4, 0.5)]
        m = calibrate_interference(profs, num_pairs=80)
        # All pairs stay under capacity: alpha recovers the tax closely.
        assert m.alpha == pytest.approx(BANDWIDTH_TAX, rel=0.25)

    def test_beta_positive_with_overcommit(self):
        profs = [synthetic_profile(o) for o in (0.6, 0.7, 0.8, 0.9)]
        m = calibrate_interference(profs, num_pairs=80)
        assert m.beta > 0.0

    def test_too_few_profiles_raises(self):
        with pytest.raises(ValueError):
            calibrate_interference([synthetic_profile(0.5)])

    def test_calibrated_model_predicts_simulation(self):
        """The fitted parametric model tracks kernel-level slowdowns."""
        profs = [synthetic_profile(o) for o in np.linspace(0.15, 0.85, 6)]
        m = calibrate_interference(profs, num_pairs=100)
        errs = []
        for a in profs:
            for b in profs:
                if a is b:
                    continue
                sim, _ = pair_slowdown(a, b)
                par = m.slowdown(a.occupancy, [b.occupancy])
                errs.append(abs(sim - par))
        assert float(np.mean(errs)) < 0.15
