"""End-to-end integration tests across the full pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DNNPerfPredictor
from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from repro.data import generate_dataset
from repro.gpu import A100, P40
from repro.sched import (OccuPacking, SlotPacking, generate_workload,
                         simulate)


@pytest.fixture(scope="module")
def trained_trainer(tiny_dataset):
    model = DNNOccu(DNNOccuConfig(hidden=24, num_heads=2), seed=0)
    trainer = Trainer(model, TrainConfig(epochs=25, lr=1e-3, batch_size=4))
    trainer.fit(tiny_dataset)
    return trainer


class TestTrainPredictPipeline:
    def test_fit_accuracy_on_seen_configs(self, trained_trainer,
                                          tiny_dataset):
        ev = trained_trainer.evaluate(tiny_dataset)
        assert ev["mre_percent"] < 40.0

    def test_generalizes_to_new_configs_of_seen_models(self,
                                                       trained_trainer):
        held_out = generate_dataset(["lenet", "alexnet"], [A100],
                                    configs_per_model=3, seed=99)
        ev = trained_trainer.evaluate(held_out)
        # New configurations of the same architectures stay predictable.
        assert ev["mre_percent"] < 60.0

    def test_beats_untrained_model(self, trained_trainer, tiny_dataset):
        fresh = Trainer(DNNOccu(DNNOccuConfig(hidden=24, num_heads=2),
                                seed=5))
        assert trained_trainer.evaluate(tiny_dataset)["mse"] < \
            fresh.evaluate(tiny_dataset)["mse"]


class TestPredictorGuidedScheduling:
    def test_dnn_occu_drives_occu_packing(self, trained_trainer):
        predictor = trained_trainer.model.predict
        jobs = generate_workload(["lenet", "alexnet"], A100, num_jobs=8,
                                 seed=4, predictor=predictor)
        assert all(j.predicted_occupancy is not None for j in jobs)
        slot = simulate(jobs, 2, SlotPacking())
        occu = simulate(jobs, 2, OccuPacking())
        assert occu.makespan_s <= slot.makespan_s + 1e-9

    def test_prediction_error_bounded_on_workload(self, trained_trainer):
        predictor = trained_trainer.model.predict
        jobs = generate_workload(["lenet", "alexnet"], A100, num_jobs=6,
                                 seed=8, predictor=predictor)
        err = np.array([abs(j.predicted_occupancy - j.occupancy)
                        for j in jobs])
        assert err.mean() < 0.25


class TestCrossDeviceLabels:
    def test_same_model_different_devices_different_labels(self):
        ds = generate_dataset(["vgg-11"], [A100, P40], configs_per_model=2,
                              seed=1)
        by_dev = {}
        for s in ds:
            by_dev.setdefault(s.device_name, []).append(s.occupancy)
        assert not np.allclose(sorted(by_dev["A100"]), sorted(by_dev["P40"]))
