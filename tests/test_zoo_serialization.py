"""Serialization round trips for the full model zoo + profiler stability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import ComputationGraph
from repro.gpu import A100, P40, fuse_elementwise, profile_graph
from repro.models import ModelConfig, build_model, list_models

SMALL = ModelConfig(batch_size=8, seq_len=32)


@pytest.mark.parametrize("name", list_models())
def test_zoo_json_roundtrip(name):
    g = build_model(name, SMALL)
    back = ComputationGraph.from_json(g.to_json())
    assert back.num_nodes == g.num_nodes
    assert back.num_edges == g.num_edges
    assert back.total_flops() == g.total_flops()
    assert back.topological_order() == g.topological_order()
    # Profiling the deserialized graph gives the identical label.
    occ_a = profile_graph(g, A100, check_memory=False).occupancy
    occ_b = profile_graph(back, A100, check_memory=False).occupancy
    assert occ_a == occ_b


@pytest.mark.parametrize("name", ["resnet-18", "vit-t", "bert",
                                  "convnext-t"])
def test_zoo_fusion_roundtrip(name):
    """Fused graphs also serialize and profile consistently."""
    g = fuse_elementwise(build_model(name, SMALL))
    back = ComputationGraph.from_json(g.to_json())
    occ_a = profile_graph(g, P40, check_memory=False).occupancy
    occ_b = profile_graph(back, P40, check_memory=False).occupancy
    assert occ_a == occ_b
