"""Tests for the benchmark report collector."""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def _load_collector():
    spec = importlib.util.spec_from_file_location(
        "collect_results", ROOT / "benchmarks" / "collect_results.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestCollector:
    def test_build_report_with_fixture_results(self, tmp_path, monkeypatch):
        mod = _load_collector()
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig2_demo.txt").write_text("batch occupancy\n4 0.1\n")
        (results / "custom_extra.txt").write_text("hello\n")
        monkeypatch.setattr(mod, "RESULTS_DIR", str(results))
        report = mod.build_report()
        assert "Fig. 2" in report
        assert "fig2_demo.txt" in report
        assert "batch occupancy" in report
        # Unmatched files land under "Other results".
        assert "Other results" in report
        assert "custom_extra.txt" in report

    def test_missing_results_dir_exits(self, tmp_path, monkeypatch):
        mod = _load_collector()
        monkeypatch.setattr(mod, "RESULTS_DIR", str(tmp_path / "nope"))
        with pytest.raises(SystemExit):
            mod.build_report()

    def test_sections_cover_every_paper_artifact(self):
        mod = _load_collector()
        prefixes = {s[0] for s in mod.SECTIONS}
        for required in ("fig2", "fig4", "fig5", "fig6", "fig7",
                         "table4", "table5", "table6"):
            assert required in prefixes
