"""Model persistence tests: .npz save/load round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DNNOccu, DNNOccuConfig
from repro.baselines import DNNPerfPredictor
from repro.nn import Linear
from repro.tensor import Module


class TinyNet(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc = Linear(3, 2, rng)

    def forward(self, x):
        return self.fc(x)


class TestSaveLoad:
    def test_roundtrip_identical_predictions(self, tmp_path, tiny_dataset):
        path = str(tmp_path / "model.npz")
        a = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=1)
        a.save(path)
        b = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=2)
        s = tiny_dataset[0].features
        assert a.predict(s) != b.predict(s)
        b.load(path)
        assert a.predict(s) == b.predict(s)

    def test_load_into_wrong_architecture_raises(self, tmp_path, rng):
        path = str(tmp_path / "m.npz")
        TinyNet(rng).save(path)
        other = DNNPerfPredictor(seed=0, hidden=8)
        with pytest.raises(KeyError):
            other.load(path)

    def test_saved_file_contains_all_parameters(self, tmp_path, rng):
        path = str(tmp_path / "m.npz")
        net = TinyNet(rng)
        net.save(path)
        with np.load(path) as data:
            assert set(data.files) == {"fc.weight", "fc.bias"}

    def test_load_is_a_copy(self, tmp_path, rng):
        path = str(tmp_path / "m.npz")
        a = TinyNet(rng)
        a.save(path)
        b = TinyNet(np.random.default_rng(9))
        b.load(path)
        b.fc.weight.data[:] = 0.0
        assert not np.allclose(a.fc.weight.data, 0.0)
