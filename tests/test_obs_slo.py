"""SLO engine, histogram-quantile edge semantics, and metrics
thread-safety.

The SLO engine evaluates declarative objectives from windowed registry
snapshot deltas (Prometheus ``increase()`` semantics); the quantile
helper's edge cases are pinned by contract, not emergent; and the
metrics primitives must count exactly under concurrent writers because
both the serving path and the quality monitor hammer them from multiple
threads."""

from __future__ import annotations

import math
import threading

import pytest

from repro import obs
from repro.obs.metrics import (Counter, Histogram, MetricsRegistry,
                               histogram_quantile)
from repro.obs.slo import (SLOEngine, SLOSpec, default_serve_slos,
                           format_slo_report)


# --------------------------------------------------------------------- #
# histogram_quantile edge semantics
# --------------------------------------------------------------------- #

class TestHistogramQuantile:
    def test_empty_is_nan(self):
        assert math.isnan(histogram_quantile((1.0, 2.0), [0, 0], 0, 0.5))

    def test_q0_is_lower_edge_of_first_nonempty_bucket(self):
        # leading bucket empty: q=0 must not report its upper bound
        assert histogram_quantile((1.0, 2.0, 4.0), [0, 3, 3], 3,
                                  0.0) == 1.0
        # first bucket occupied: q=0 is its lower edge, 0.0
        assert histogram_quantile((1.0, 2.0), [2, 2], 2, 0.0) == 0.0

    def test_q1_is_upper_bound_of_last_occupied_bucket(self):
        assert histogram_quantile((1.0, 2.0, 4.0), [1, 1, 3], 3,
                                  1.0) == 4.0

    def test_all_in_overflow_clamps_to_last_finite_bound(self):
        # every observation beyond the last bound: any q returns it
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram_quantile((1.0, 2.0), [0, 0], 5, q) == 2.0

    def test_linear_interpolation_within_bucket(self):
        # 4 obs in (1, 2]: median ranks 2/4 of the way through
        assert histogram_quantile((1.0, 2.0), [0, 4], 4, 0.5) == 1.5

    def test_empty_middle_buckets_skipped(self):
        # ranks falling in the empty (1, 2] bucket resolve in (2, 4]
        v = histogram_quantile((1.0, 2.0, 4.0), [1, 1, 2], 2, 0.75)
        assert 2.0 < v <= 4.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            histogram_quantile((1.0,), [1], 1, 1.5)
        with pytest.raises(ValueError):
            histogram_quantile((1.0,), [1], 1, -0.1)

    def test_histogram_method_matches_module_function(self):
        h = Histogram("x", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 1.5
        assert h.quantile(1.0) == 4.0

    def test_empty_histogram_quantile_is_nan(self):
        assert math.isnan(Histogram("x", buckets=(1.0,)).quantile(0.99))

    def test_histogram_all_overflow_regression(self):
        h = Histogram("x", buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == 1.0


# --------------------------------------------------------------------- #
# SLO specs + engine
# --------------------------------------------------------------------- #

class TestSLOSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="latency", objective=0.1)

    def test_nonpositive_objective_rejected(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="ratio", objective=0.0,
                    bad_counter="b")

    def test_quantile_bounds_enforced(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="quantile", objective=0.1,
                    quantile=1.0)

    def test_ratio_needs_bad_counter(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="ratio", objective=0.1)

    def test_default_serve_slos_cover_latency_shed_error(self):
        names = {s.name for s in default_serve_slos()}
        assert names == {"serve-p99-latency", "serve-shed-rate",
                         "serve-error-rate"}


def _ratio_engine(registry, objective=0.05, window_s=60.0) -> SLOEngine:
    return SLOEngine(registry, specs=(
        SLOSpec(name="shed", kind="ratio", objective=objective,
                window_s=window_s, bad_counter="serve_shed_total"),))


class TestSLOEngineRatio:
    def test_evaluate_requires_a_snapshot(self):
        with pytest.raises(RuntimeError):
            _ratio_engine(MetricsRegistry()).evaluate(now=0.0)

    def test_burn_rate_is_frac_over_objective(self):
        reg = MetricsRegistry()
        reg.counter("serve_requests_total").inc(100)
        reg.counter("serve_shed_total").inc(10)
        engine = _ratio_engine(reg, objective=0.05)
        engine.snapshot(now=0.0)
        (status,) = engine.evaluate(now=0.0)
        assert status.value == pytest.approx(0.10)
        assert not status.ok
        assert status.burn_rate == pytest.approx(2.0)
        assert status.budget_remaining == pytest.approx(-1.0)
        assert status.samples == 100

    def test_window_differences_snapshots(self):
        reg = MetricsRegistry()
        reg.counter("serve_requests_total").inc(100)
        reg.counter("serve_shed_total").inc(100)  # old badness
        engine = _ratio_engine(reg, window_s=60.0)
        engine.snapshot(now=0.0)
        reg.counter("serve_requests_total").inc(100)  # clean window
        engine.snapshot(now=60.0)
        (status,) = engine.evaluate(now=120.0)
        # baseline = t=0 snapshot: only the clean delta is in scope
        assert status.ok
        assert status.value == 0.0
        assert status.samples == 100

    def test_no_traffic_is_vacuously_ok(self):
        engine = _ratio_engine(MetricsRegistry())
        engine.snapshot(now=0.0)
        (status,) = engine.evaluate(now=0.0)
        assert status.ok and status.samples == 0

    def test_check_and_violation_counters(self):
        reg = MetricsRegistry()
        reg.counter("serve_requests_total").inc(10)
        reg.counter("serve_shed_total").inc(9)
        engine = _ratio_engine(reg)
        engine.snapshot(now=0.0)
        with obs.observed() as (_t, obs_reg):
            ok, statuses = engine.check(now=0.0)
            assert not ok and len(statuses) == 1
            counts = {m.name: m.value for m in obs_reg
                      if m.kind == "counter"}
        assert counts["slo_evaluations_total"] == 1
        assert counts["slo_violations_total"] == 1


class TestSLOEngineQuantile:
    def _latency_engine(self, values, objective=0.050):
        reg = MetricsRegistry()
        h = reg.histogram("serve_latency_seconds",
                          buckets=(0.001, 0.01, 0.05, 0.1, 1.0))
        for v in values:
            h.observe(v)
        engine = SLOEngine(reg, specs=(
            SLOSpec(name="p99", kind="quantile", objective=objective,
                    quantile=0.99,
                    histogram="serve_latency_seconds"),))
        engine.snapshot(now=0.0)
        return engine

    def test_fast_workload_passes(self):
        engine = self._latency_engine([0.0005] * 100)
        (status,) = engine.evaluate(now=0.0)
        assert status.ok
        assert status.value <= 0.001
        assert status.burn_rate == 0.0

    def test_slow_tail_fails_with_burn(self):
        # 10% of requests in (0.1, 1.0]: p99 lands there, and the
        # fraction above the 50 ms objective burns 0.1 / 0.01 = 10x
        engine = self._latency_engine([0.005] * 90 + [0.5] * 10)
        (status,) = engine.evaluate(now=0.0)
        assert not status.ok
        assert status.value > 0.05
        assert status.burn_rate == pytest.approx(10.0)

    def test_missing_histogram_is_vacuously_ok(self):
        engine = SLOEngine(MetricsRegistry(), specs=(
            SLOSpec(name="p99", kind="quantile", objective=0.05),))
        engine.snapshot(now=0.0)
        (status,) = engine.evaluate(now=0.0)
        assert status.ok and status.samples == 0

    def test_to_dict_round_trips_status_fields(self):
        engine = self._latency_engine([0.0005] * 10)
        doc = engine.to_dict(now=0.0)
        (entry,) = doc["slos"]
        assert entry["name"] == "p99" and entry["ok"] is True
        assert set(entry) >= {"kind", "objective", "value", "burn_rate",
                              "budget_remaining", "samples", "window_s"}

    def test_format_report_marks_ok_and_fail(self):
        ok_engine = self._latency_engine([0.0005] * 10)
        bad_engine = self._latency_engine([0.5] * 10)
        ok_text = format_slo_report(ok_engine.evaluate(now=0.0))
        bad_text = format_slo_report(bad_engine.evaluate(now=0.0))
        assert "OK " in ok_text and "FAIL" not in ok_text
        assert "FAIL" in bad_text
        assert format_slo_report([]) == "(no SLOs configured)"


class TestSLOServeIntegration:
    def test_healthy_serve_workload_meets_default_objectives(self):
        from repro.core import DNNOccu, DNNOccuConfig
        from repro.gpu import get_device
        from repro.models import ModelConfig, build_model
        from repro.serve import PredictorService
        device = get_device("A100")
        model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=3)
        graphs = [build_model(n, ModelConfig(batch_size=4))
                  for n in ("lenet", "alexnet")]
        with obs.observed() as (_tracer, registry):
            engine = SLOEngine(registry)
            engine.snapshot(now=0.0)
            with PredictorService(model, device) as svc:
                for i in range(20):
                    svc.predict(graphs[i % len(graphs)])
            engine.snapshot(now=30.0)
            ok, statuses = engine.check(now=30.0)
        assert ok, format_slo_report(statuses)
        by_name = {s.spec.name: s for s in statuses}
        assert by_name["serve-shed-rate"].samples == 20


# --------------------------------------------------------------------- #
# metrics thread-safety
# --------------------------------------------------------------------- #

class TestMetricsConcurrency:
    THREADS = 8
    PER_THREAD = 2500

    def _hammer(self, fn):
        threads = [threading.Thread(target=fn)
                   for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_increments_are_exact(self):
        c = Counter("hits")
        self._hammer(lambda: [c.inc() for _ in range(self.PER_THREAD)])
        assert c.snapshot() == self.THREADS * self.PER_THREAD

    def test_histogram_counts_are_exact(self):
        h = Histogram("lat", buckets=(0.5, 1.0, 2.0))
        values = (0.1, 0.7, 1.5, 5.0)

        def worker():
            for i in range(self.PER_THREAD):
                h.observe(values[i % len(values)])

        self._hammer(worker)
        cum, count, total = h.state()
        n = self.THREADS * self.PER_THREAD
        assert count == n
        assert cum[-1] == n * 3 // 4  # 5.0 overflows the last bucket
        per_value = n // len(values)
        assert total == pytest.approx(per_value * sum(values))

    def test_registry_get_or_create_is_singleton_under_race(self):
        reg = MetricsRegistry()
        seen = []

        def worker():
            c = reg.counter("shared_total")
            seen.append(c)
            for _ in range(self.PER_THREAD):
                c.inc()

        self._hammer(worker)
        assert len({id(c) for c in seen}) == 1
        assert reg.counter("shared_total").snapshot() == \
            self.THREADS * self.PER_THREAD

    def test_iteration_during_concurrent_registration(self):
        reg = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def registrar(k: int):
            i = 0
            while not stop.is_set():
                reg.counter(f"c_{k}_{i % 50}").inc()
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    for metric in reg:
                        metric.snapshot()
                    len(reg)
            except Exception as exc:  # snapshot consistency violated
                errors.append(exc)

        threads = [threading.Thread(target=registrar, args=(k,))
                   for k in range(4)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for t in threads:
            t.join()
        timer.cancel()
        assert not errors
