"""Property-based tests for the elementwise-fusion pass."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphBuilder
from repro.gpu import fuse_elementwise

#: elementwise ops the builder can chain after a conv
_ACTS = ("relu", "gelu", "silu", "sigmoid", "tanh", "batchnorm2d", "scale")


def _apply(b: GraphBuilder, ref, op: str):
    return getattr(b, op)(ref)


@st.composite
def conv_chains(draw):
    """A random Conv -> (elementwise)* chain spec."""
    n_convs = draw(st.integers(1, 3))
    chain = []
    for _ in range(n_convs):
        chain.append(("conv", draw(st.sampled_from((4, 8)))))
        for _ in range(draw(st.integers(0, 3))):
            chain.append(("act", draw(st.sampled_from(_ACTS))))
    return chain


def build_chain(spec) -> GraphBuilder:
    b = GraphBuilder("chain")
    ref = b.input((2, 4, 8, 8))
    for kind, arg in spec:
        if kind == "conv":
            ref = b.conv2d(ref, arg, 3, padding=1)
        else:
            ref = _apply(b, ref, arg)
    return b


class TestFusionProperties:
    @given(conv_chains())
    @settings(max_examples=40, deadline=None)
    def test_flops_conserved(self, spec):
        g = build_chain(spec).finish()
        f = fuse_elementwise(g)
        assert f.total_flops() == g.total_flops()

    @given(conv_chains())
    @settings(max_examples=40, deadline=None)
    def test_fused_graph_valid_and_smaller_or_equal(self, spec):
        g = build_chain(spec).finish()
        f = fuse_elementwise(g)
        f.validate()
        assert f.num_nodes <= g.num_nodes
        assert f.num_edges <= g.num_edges

    @given(conv_chains())
    @settings(max_examples=40, deadline=None)
    def test_all_chained_elementwise_absorbed(self, spec):
        g = build_chain(spec).finish()
        f = fuse_elementwise(g)
        hist = f.op_type_histogram()
        # In a pure chain every elementwise op has a single heavy(-rooted)
        # producer with one consumer, so all of them fuse.
        for op in ("ReLU", "GELU", "SiLU", "Sigmoid", "Tanh",
                   "BatchNorm2d", "Scale"):
            assert op not in hist, (spec, hist)

    @given(conv_chains())
    @settings(max_examples=30, deadline=None)
    def test_fusion_idempotent(self, spec):
        g = build_chain(spec).finish()
        once = fuse_elementwise(g)
        twice = fuse_elementwise(once)
        assert twice.num_nodes == once.num_nodes
        assert twice.total_flops() == once.total_flops()

    @given(conv_chains())
    @settings(max_examples=30, deadline=None)
    def test_final_output_shape_preserved(self, spec):
        g = build_chain(spec).finish()
        f = fuse_elementwise(g)
        last_g = g.nodes[g.topological_order()[-1]]
        last_f = f.nodes[f.topological_order()[-1]]
        assert last_f.output_shape == last_g.output_shape
