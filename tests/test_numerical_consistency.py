"""Numerical consistency checks across the neural stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import LayerNorm, Linear, MultiHeadAttention
from repro.tensor import Tensor


class TestAttentionNumerics:
    def test_matches_manual_single_head(self, rng):
        """One-head attention equals the hand-computed softmax(QK^T/√d)V."""
        mha = MultiHeadAttention(4, 1, rng)
        x = rng.normal(size=(3, 4))
        out = mha(Tensor(x)).data

        q = x @ mha.w_q.weight.data.T + mha.w_q.bias.data
        k = x @ mha.w_k.weight.data.T + mha.w_k.bias.data
        v = x @ mha.w_v.weight.data.T + mha.w_v.bias.data
        scores = q @ k.T / np.sqrt(4)
        e = np.exp(scores - scores.max(axis=-1, keepdims=True))
        w = e / e.sum(axis=-1, keepdims=True)
        manual = (w @ v) @ mha.w_o.weight.data.T + mha.w_o.bias.data
        np.testing.assert_allclose(out, manual, atol=1e-10)

    def test_heads_partition_dim(self, rng):
        """2-head output differs from 1-head (heads are not a no-op)."""
        x = rng.normal(size=(3, 8))
        one = MultiHeadAttention(8, 1, rng)
        two = MultiHeadAttention(8, 2, rng)
        two.load_state_dict(one.state_dict())
        assert not np.allclose(one(Tensor(x)).data, two(Tensor(x)).data)

    def test_uniform_attention_on_identical_tokens(self, rng):
        """Identical tokens attend uniformly: output rows are identical."""
        mha = MultiHeadAttention(8, 2, rng)
        x = np.tile(rng.normal(size=(1, 8)), (5, 1))
        out = mha(Tensor(x)).data
        np.testing.assert_allclose(out, np.tile(out[:1], (5, 1)),
                                   atol=1e-10)


class TestSoftmaxConsistency:
    def test_log_softmax_is_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(4, 7)) * 3)
        np.testing.assert_allclose(x.log_softmax(-1).data,
                                   np.log(x.softmax(-1).data), atol=1e-12)

    def test_softmax_gradients_agree(self, rng):
        """d/dx sum(softmax(x) * c) via both formulations."""
        x = rng.normal(size=(3, 5))
        c = rng.normal(size=(3, 5))
        t1 = Tensor(x.copy(), requires_grad=True)
        (t1.softmax(-1) * Tensor(c)).sum().backward()
        t2 = Tensor(x.copy(), requires_grad=True)
        (t2.log_softmax(-1).exp() * Tensor(c)).sum().backward()
        np.testing.assert_allclose(t1.grad, t2.grad, atol=1e-9)


class TestLayerNormNumerics:
    def test_matches_manual(self, rng):
        ln = LayerNorm(6)
        ln.gamma.data[:] = rng.normal(size=6)
        ln.beta.data[:] = rng.normal(size=6)
        x = rng.normal(size=(4, 6))
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        manual = (x - mu) / np.sqrt(var + ln.eps) * ln.gamma.data \
            + ln.beta.data
        np.testing.assert_allclose(ln(Tensor(x)).data, manual, atol=1e-12)

    def test_scale_invariance_of_direction(self, rng):
        """LayerNorm(a*x) ~= LayerNorm(x) for positive scalar a (up to
        the eps regularizer)."""
        ln = LayerNorm(6)
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(ln(Tensor(x)).data,
                                   ln(Tensor(5.0 * x)).data, atol=1e-4)


class TestLinearNumerics:
    def test_composition_associative(self, rng):
        """(W2 W1) x == W2 (W1 x) for bias-free layers."""
        l1 = Linear(4, 5, rng, bias=False)
        l2 = Linear(5, 3, rng, bias=False)
        x = rng.normal(size=(7, 4))
        combined = x @ (l2.weight.data @ l1.weight.data).T
        np.testing.assert_allclose(l2(l1(Tensor(x))).data, combined,
                                   atol=1e-10)
