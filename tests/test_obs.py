"""Observability subsystem tests: tracing, metrics, logging, exporters,
instrumentation wiring, and the no-op fast path."""

from __future__ import annotations

import io
import json
import logging as stdlib_logging

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import NULL_METRIC
from repro.obs.tracing import NOOP_SPAN


@pytest.fixture()
def enabled():
    """Scoped tracer+registry; never leaks into other tests."""
    with obs.observed() as (tracer, registry):
        yield tracer, registry


class TestSpans:
    def test_disabled_records_nothing(self):
        assert not obs.is_enabled()
        with obs.span("ignored", k=1):
            pass
        assert obs.get_tracer() is None

    def test_noop_span_is_shared_singleton(self):
        assert obs.span("a") is NOOP_SPAN
        assert obs.span("b", key="v") is NOOP_SPAN
        NOOP_SPAN.set_attr(x=1)  # must not raise

    def test_records_span_with_attrs(self, enabled):
        tracer, _ = enabled
        with obs.span("work", model="lenet"):
            pass
        (rec,) = tracer.events
        assert rec.name == "work"
        assert rec.attrs == {"model": "lenet"}
        assert rec.duration_us >= 0.0

    def test_nesting_depth_and_containment(self, enabled):
        tracer, _ = enabled
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = tracer.events  # inner closes first
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.depth == 1 and outer.depth == 0
        assert outer.start_us <= inner.start_us
        assert inner.end_us <= outer.end_us

    def test_timing_monotonicity(self, enabled):
        tracer, _ = enabled
        for _ in range(5):
            with obs.span("step"):
                pass
        starts = [r.start_us for r in tracer.events]
        assert starts == sorted(starts)
        assert all(r.start_us >= 0.0 for r in tracer.events)

    def test_exception_tagged_and_reraised(self, enabled):
        tracer, _ = enabled
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("x")
        assert tracer.events[0].attrs["error"] == "ValueError"

    def test_set_attr_while_open(self, enabled):
        tracer, _ = enabled
        with obs.span("ev") as sp:
            sp.set_attr(found=3)
        assert tracer.events[0].attrs["found"] == 3


class TestChromeExport:
    def test_event_schema(self, enabled):
        tracer, registry = enabled
        with obs.span("outer"):
            with obs.span("inner", node_id=7):
                pass
        trace = json.loads(obs.export_chrome_trace(tracer, registry))
        events = trace["traceEvents"]
        assert len(events) == 2
        for ev in events:
            for field in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert field in ev
            assert ev["ph"] == "X"
        # export sorts by start time: outer first despite closing last
        assert [e["name"] for e in events] == ["outer", "inner"]
        assert events[1]["args"]["node_id"] == 7

    def test_metrics_snapshot_rides_along(self, enabled):
        tracer, registry = enabled
        registry.counter("c_total").inc(2)
        trace = json.loads(obs.export_chrome_trace(tracer, registry))
        assert trace["otherData"]["metrics"]["c_total"][0]["value"] == 2


class TestCounterGauge:
    def test_counter_monotonic(self):
        c = obs.Counter("c_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = obs.Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0

    def test_registry_get_or_create_and_kind_clash(self):
        reg = obs.MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("y", gpu="0") is not reg.counter("y", gpu="1")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_null_metric_when_disabled(self):
        assert obs.counter("whatever") is NULL_METRIC
        assert obs.gauge("whatever") is NULL_METRIC
        assert obs.histogram("whatever") is NULL_METRIC
        NULL_METRIC.inc()
        NULL_METRIC.set(3)
        NULL_METRIC.observe(1.0)


class TestHistogram:
    def test_bucket_counts(self):
        h = obs.Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1]  # le=1 catches 0.5 and 1.0
        assert h.count == 5
        assert h.sum == pytest.approx(556.5)
        assert h.cumulative_counts() == [2, 3, 4]

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            obs.Histogram("h", buckets=(10.0, 1.0))


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        reg = obs.MetricsRegistry()
        reg.counter("jobs_total", "jobs seen").inc(3)
        reg.gauge("depth", "queue depth").set(1.5)
        text = reg.to_prometheus()
        assert "# HELP jobs_total jobs seen" in text
        assert "# TYPE jobs_total counter" in text
        assert "\njobs_total 3\n" in text
        assert "# TYPE depth gauge" in text
        assert "\ndepth 1.5\n" in text

    def test_histogram_series(self):
        reg = obs.MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="10"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 55.5" in text
        assert "lat_count 3" in text
        assert "# TYPE lat histogram" in text

    def test_labels_rendered_sorted(self):
        reg = obs.MetricsRegistry()
        reg.counter("busy_total", gpu="1", node="a").inc()
        assert 'busy_total{gpu="1",node="a"} 1' in reg.to_prometheus()

    def test_json_dump_round_trips(self):
        reg = obs.MetricsRegistry()
        reg.counter("c").inc(2)
        assert json.loads(reg.to_json())["c"][0]["value"] == 2


class TestLogging:
    def _capture(self, level="info"):
        stream = io.StringIO()
        logger = obs.configure_logging(level, stream=stream)
        return logger, stream

    def test_key_value_format(self):
        logger, stream = self._capture()
        obs.get_logger("gpu").info("hello world", extra={"node": 3})
        line = stream.getvalue().strip()
        assert "level=info" in line
        assert "logger=repro.gpu" in line
        assert 'msg="hello world"' in line
        assert "node=3" in line
        assert line.startswith("ts=")

    def test_level_filtering(self):
        logger, stream = self._capture("warning")
        obs.get_logger("x").info("dropped")
        obs.get_logger("x").warning("kept")
        assert "dropped" not in stream.getvalue()
        assert "kept" in stream.getvalue()

    def test_reconfigure_does_not_stack_handlers(self):
        self._capture()
        logger, stream = self._capture()
        obs.get_logger("y").warning("once")
        assert stream.getvalue().count("msg=once") == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            obs.configure_logging("verbose")

    def teardown_method(self):
        # drop the test handler so other tests stay silent
        base = stdlib_logging.getLogger("repro")
        for h in list(base.handlers):
            if not isinstance(h, stdlib_logging.NullHandler):
                base.removeHandler(h)


class TestSummary:
    def _trace(self):
        # parent 0..100us with children 10..40 and 50..80 on one lane
        return {"traceEvents": [
            {"name": "parent", "ph": "X", "ts": 0.0, "dur": 100.0,
             "pid": 1, "tid": 1},
            {"name": "child", "ph": "X", "ts": 10.0, "dur": 30.0,
             "pid": 1, "tid": 1},
            {"name": "child", "ph": "X", "ts": 50.0, "dur": 30.0,
             "pid": 1, "tid": 1},
        ]}

    def test_self_time_excludes_children(self):
        stats = {s.name: s for s in obs.span_stats(self._trace())}
        assert stats["parent"].total_us == pytest.approx(100.0)
        assert stats["parent"].self_us == pytest.approx(40.0)
        assert stats["child"].count == 2
        assert stats["child"].self_us == pytest.approx(60.0)

    def test_separate_lanes_do_not_nest(self):
        trace = self._trace()
        trace["traceEvents"][1]["tid"] = 2  # move one child off-lane
        stats = {s.name: s for s in obs.span_stats(trace)}
        assert stats["parent"].self_us == pytest.approx(70.0)

    def test_summarize_renders_spans_and_metrics(self):
        trace = self._trace()
        trace["otherData"] = {"metrics": {
            "c_total": [{"kind": "counter", "value": 4}]}}
        text = obs.summarize_trace(trace)
        assert "parent" in text and "child" in text
        assert "c_total" in text

    def test_load_rejects_non_trace(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"foo": 1}')
        with pytest.raises(ValueError):
            obs.load_trace_file(str(path))

    def test_load_accepts_bare_array(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text('[{"name": "a", "ph": "X", "ts": 0, "dur": 1}]')
        assert len(obs.load_trace_file(str(path))["traceEvents"]) == 1


class TestProfilerInstrumentation:
    def _graph(self):
        from repro.models import ModelConfig, build_model
        return build_model("lenet", ModelConfig(batch_size=8))

    def test_disabled_profile_records_zero_events(self):
        from repro.gpu import A100, profile_graph
        tracer = obs.Tracer()
        registry = obs.MetricsRegistry()
        profile_graph(self._graph(), A100)  # obs is off
        assert len(tracer.events) == 0
        assert len(registry) == 0

    def test_enabled_profile_records_spans_and_metrics(self, enabled):
        from repro.gpu import A100, profile_graph
        tracer, registry = enabled
        prof = profile_graph(self._graph(), A100)
        names = {r.name for r in tracer.events}
        assert "profile_graph" in names
        assert "lower_node" in names
        snap = registry.to_dict()
        assert snap["profiler_kernels_total"][0]["value"] \
            == prof.num_kernels
        assert snap["profiler_kernel_occupancy"][0]["value"]["count"] \
            == len(prof.records)

    def test_oom_increments_counter_and_names_node(self, enabled):
        from repro.gpu import A100, OutOfMemoryError, profile_graph
        from repro.models import ModelConfig, build_model
        _, registry = enabled
        huge = build_model("vgg-16", ModelConfig(batch_size=4096))
        with pytest.raises(OutOfMemoryError, match=r"peak at node \d+"):
            profile_graph(huge, A100)
        assert registry.to_dict()["profiler_oom_total"][0]["value"] == 1

    def test_training_oom_names_node(self):
        from repro.gpu import A100, OutOfMemoryError, \
            profile_training_graph
        from repro.models import ModelConfig, build_model
        huge = build_model("vgg-16", ModelConfig(batch_size=2048))
        with pytest.raises(OutOfMemoryError, match=r"peak at node \d+"):
            profile_training_graph(huge, A100)

    def test_peak_memory_breakdown_consistent(self):
        from repro.gpu import peak_memory_breakdown, peak_memory_bytes
        graph = self._graph()
        breakdown = peak_memory_breakdown(graph)
        assert breakdown["total_bytes"] == peak_memory_bytes(graph)
        assert breakdown["peak_node_id"] in graph.nodes
        assert breakdown["peak_op_type"] == \
            graph.nodes[breakdown["peak_node_id"]].op_type


class TestTrainerInstrumentation:
    def test_epoch_times_recorded(self, tiny_dataset):
        from repro.baselines import MLPPredictor
        from repro.core import TrainConfig, Trainer
        tr = Trainer(MLPPredictor(seed=0, widths=(16, 16)),
                     TrainConfig(epochs=4))
        hist = tr.fit(tiny_dataset)
        assert len(hist.epoch_time_s) == 4
        assert all(t > 0 for t in hist.epoch_time_s)
        assert hist.total_time_s == pytest.approx(sum(hist.epoch_time_s))

    def test_evaluate_surfaces_fit_time(self, tiny_dataset):
        from repro.baselines import MLPPredictor
        from repro.core import TrainConfig, Trainer
        tr = Trainer(MLPPredictor(seed=0, widths=(16, 16)),
                     TrainConfig(epochs=2))
        assert tr.evaluate(tiny_dataset)["fit_time_s"] == 0.0
        tr.fit(tiny_dataset)
        ev = tr.evaluate(tiny_dataset)
        assert ev["fit_time_s"] == pytest.approx(tr.history.total_time_s)
        assert ev["fit_time_s"] > 0

    def test_fit_emits_spans_and_gauges(self, tiny_dataset, enabled):
        from repro.baselines import MLPPredictor
        from repro.core import TrainConfig, Trainer
        tracer, registry = enabled
        tr = Trainer(MLPPredictor(seed=0, widths=(16, 16)),
                     TrainConfig(epochs=3))
        tr.fit(tiny_dataset)
        epochs = [r for r in tracer.events if r.name == "trainer.epoch"]
        assert [r.attrs["epoch"] for r in epochs] == [0, 1, 2]
        snap = registry.to_dict()
        assert snap["trainer_loss"][0]["value"] \
            == pytest.approx(tr.history.train_loss[-1])
        assert snap["trainer_lr"][0]["value"] == pytest.approx(1e-4)


class TestSimulatorInstrumentation:
    def _run(self):
        from repro.gpu import P40
        from repro.sched import SlotPacking, generate_workload, simulate
        jobs = generate_workload(("lenet", "alexnet"), P40, 4, seed=0,
                                 iterations_range=(50, 100))
        return simulate(jobs, 2, SlotPacking())

    def test_disabled_simulate_records_nothing(self):
        self._run()
        assert obs.get_tracer() is None

    def test_enabled_simulate_records_events_and_busy(self, enabled):
        tracer, registry = enabled
        result = self._run()
        names = [r.name for r in tracer.events]
        assert "sched.simulate" in names
        assert names.count("sched.event") >= len(result.jobs)
        snap = registry.to_dict()
        busy = sum(e["value"]
                   for e in snap["sched_gpu_busy_seconds_total"])
        assert busy == pytest.approx(result.busy_integral_s)
        assert snap["sched_queue_depth"][0]["value"] == 0
        assert snap["sched_events_total"][0]["value"] \
            == names.count("sched.event")


class TestObservedScope:
    def test_restores_previous_state(self):
        outer_tracer = obs.install_tracer()
        try:
            with obs.observed() as (inner_tracer, _):
                assert obs.get_tracer() is inner_tracer
            assert obs.get_tracer() is outer_tracer
        finally:
            obs.disable()
        assert not obs.is_enabled()


class TestCliObservability:
    def test_version_flag(self, capsys):
        import repro
        from repro.cli import main
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_trace_out_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        out = str(tmp_path / "t.json")
        assert main(["profile", "--model", "lenet", "--batch", "8",
                     "--trace-out", out]) == 0
        trace = json.loads(open(out).read())
        assert trace["traceEvents"]
        for ev in trace["traceEvents"]:
            for field in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert field in ev
        assert "profiler_kernels_total" in trace["otherData"]["metrics"]
        assert not obs.is_enabled()  # CLI cleaned up after itself
        capsys.readouterr()
        assert main(["obs", out]) == 0
        text = capsys.readouterr().out
        assert "profile_graph" in text
        assert "profiler_kernels_total" in text

    def test_obs_command_on_kernel_timeline(self, tmp_path, capsys):
        from repro.cli import main
        out = str(tmp_path / "k.json")
        assert main(["trace", "--model", "lenet", "--batch", "8",
                     "--out", out]) == 0
        capsys.readouterr()
        assert main(["obs", out]) == 0
        assert "trace:" in capsys.readouterr().out

    def test_log_level_flag_parses(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["--log-level", "debug", "profile", "--model", "lenet"])
        assert args.log_level == "debug"
        base = stdlib_logging.getLogger("repro")
        for h in list(base.handlers):
            if not isinstance(h, stdlib_logging.NullHandler):
                base.removeHandler(h)
