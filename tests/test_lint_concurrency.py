"""Concurrency static analyzer (C001–C005) + runtime lock sanitizer.

Contract mirrors ``test_lint.py``: every code fires exactly once on its
broken fixture (and fires *alone* — no collateral diagnostics), the
real source tree lints concurrency-clean after this PR's fixes, and the
``# conc: lockfree-ok`` opt-out only works with a reason attached to an
actual shared-access site.  The second half covers the LockWatch
sanitizer: acquisition edges, inversions, hold times, Condition
integration, the static/dynamic cross-check, and a serve workload run
fully instrumented.
"""

from __future__ import annotations

import pathlib
import threading
import time
from collections import Counter

import pytest

import repro
from repro.lint import (LintReport, LockWatch, current_watch,
                        default_manager, default_source_roots,
                        install_watch, lint_concurrency, new_condition,
                        new_lock, new_rlock, static_acquisition_graph,
                        uninstall_watch)
from repro.lint.concurrency import build_program_model
from repro.lint.manager import ProgramContext


def codes(report: LintReport) -> Counter:
    return Counter(d.code for d in report.diagnostics)


def lint_source(src: str, path: str = "fixture.py") -> LintReport:
    return default_manager().run_program([(path, src)])


# --------------------------------------------------------------------- #
# Broken fixtures: each code fires exactly once, and alone
# --------------------------------------------------------------------- #

C001_SRC = '''\
import threading

class Worker:
    def __init__(self):
        self.count = 0
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        self.count += 1

    def value(self):
        return self.count

    def close(self):
        self._thread.join()
'''


def test_c001_unguarded_shared_attribute():
    c = codes(lint_source(C001_SRC))
    assert c["C001"] == 1
    assert set(c) == {"C001"}


C002_SRC = '''\
import threading

class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        with self._lock:
            self.count += 1

    def value(self):
        return self.count

    def close(self):
        self._thread.join()
'''


def test_c002_inconsistently_guarded_attribute():
    c = codes(lint_source(C002_SRC))
    assert c["C002"] == 1
    assert set(c) == {"C002"}


C003_SRC = '''\
import threading

class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass
'''


def test_c003_lock_order_cycle():
    report = lint_source(C003_SRC)
    c = codes(report)
    assert c["C003"] == 1
    assert set(c) == {"C003"}
    (diag,) = report.by_code("C003")
    assert "Pair._a" in diag.message and "Pair._b" in diag.message


C003_SELF_SRC = '''\
import threading

class Nested:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            with self._lock:
                pass
'''


def test_c003_nonreentrant_self_deadlock():
    c = codes(lint_source(C003_SELF_SRC))
    assert c["C003"] == 1
    assert set(c) == {"C003"}


def test_c003_reentrant_self_acquire_is_fine():
    c = codes(lint_source(C003_SELF_SRC.replace("threading.Lock()",
                                                "threading.RLock()")))
    assert not c


C004_SRC = '''\
import threading

class Slow:
    def __init__(self):
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        pass

    def close(self):
        with self._lock:
            self._thread.join()
'''


def test_c004_blocking_while_locked():
    c = codes(lint_source(C004_SRC))
    assert c["C004"] == 1
    assert set(c) == {"C004"}


C005_SRC = '''\
import threading

class Leaky:
    def __init__(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        pass
'''


def test_c005_daemon_thread_without_join():
    c = codes(lint_source(C005_SRC))
    assert c["C005"] == 1
    assert set(c) == {"C005"}


def test_condition_wait_holding_only_itself_is_exempt():
    src = '''\
import threading

class Waiter:
    def __init__(self):
        self._cond = threading.Condition()

    def wait_for_work(self):
        with self._cond:
            self._cond.wait(0.05)
'''
    assert not codes(lint_source(src))


def test_condition_wait_holding_another_lock_fires_c004():
    src = '''\
import threading

class Waiter:
    def __init__(self):
        self._cond = threading.Condition()
        self._lock = threading.Lock()

    def wait_for_work(self):
        with self._lock:
            with self._cond:
                self._cond.wait(0.05)
'''
    c = codes(lint_source(src))
    assert c["C004"] == 1


# --------------------------------------------------------------------- #
# The lockfree-ok opt-out contract
# --------------------------------------------------------------------- #

def _annotated(comment: str) -> str:
    return C001_SRC.replace(
        "        self.count += 1",
        f"        {comment}\n        self.count += 1")


def test_lockfree_optout_with_reason_suppresses():
    src = _annotated("# conc: lockfree-ok -- += on int is fine here")
    assert not codes(lint_source(src))


def test_lockfree_optout_without_reason_does_not_suppress():
    src = _annotated("# conc: lockfree-ok")
    assert codes(lint_source(src))["C001"] == 1


def test_lockfree_optout_away_from_access_site_does_not_suppress():
    # parked on the class body, nowhere near a shared access of `count`
    src = C001_SRC.replace(
        "class Worker:",
        "class Worker:\n    # conc: lockfree-ok -- stale annotation")
    assert codes(lint_source(src))["C001"] == 1


def test_lockfree_optout_is_per_attribute():
    # annotating `count` must not silence a different shared attribute
    # whose access sites sit outside the comment's reach
    src = '''\
import threading

class Worker:
    def __init__(self):
        self.count = 0
        self.other = 0
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        # conc: lockfree-ok -- += on int is fine here
        self.count += 1
        a = 1
        b = 2
        c = 3
        d = 4
        self.other = a + b + c + d

    def value(self):
        return self.count

    def other_value(self):
        return self.other

    def close(self):
        self._thread.join()
'''
    report = lint_source(src)
    c = codes(report)
    assert c["C001"] == 1
    assert report.by_code("C001")[0].target == "Worker.other"


# --------------------------------------------------------------------- #
# Role inference details the serve tree depends on
# --------------------------------------------------------------------- #

def test_callback_escape_into_thread_owning_class_is_worker():
    # `self._tick` never appears as a Thread target, but it escapes into
    # a thread-owning class's constructor — its writes are worker-side.
    src = '''\
import threading

class Runner:
    def __init__(self, callback):
        self._callback = callback
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        self._callback()

    def close(self):
        self._thread.join()

class Owner:
    def __init__(self):
        self.ticks = 0
        self.runner = Runner(self._tick)

    def _tick(self):
        self.ticks += 1

    def read(self):
        return self.ticks
'''
    c = codes(lint_source(src))
    assert c["C001"] == 1  # Owner.ticks: worker write vs client read


def test_cross_class_bare_read_fires_against_owner():
    # the MicroBatcher.stats() bug shape: owner guards its counter, a
    # peer class reads it bare through a typed attribute
    src = '''\
import threading

class Inner:
    def __init__(self):
        self._cond = threading.Condition()
        self.done = 0
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        with self._cond:
            self.done += 1

    def close(self):
        self._thread.join()

class Outer:
    def __init__(self):
        self.inner = Inner()

    def stats(self):
        return {"done": self.inner.done}
'''
    report = lint_source(src)
    c = codes(report)
    assert c["C002"] == 1
    assert report.by_code("C002")[0].target == "Inner.done"


def test_static_acquisition_graph_of_the_tree():
    edges = static_acquisition_graph()
    assert ("QualityMonitor._cond", "QualityMonitor._lock") in edges
    # the documented lock hierarchy is acyclic: no reverse edge
    assert ("QualityMonitor._lock", "QualityMonitor._cond") not in edges


def test_source_tree_lints_concurrency_clean():
    root = pathlib.Path(repro.__file__).parent
    report = lint_concurrency([str(root)])
    assert report.targets_checked >= 50
    assert report.clean, report.format_text()


def test_default_roots_include_scripts_and_benchmarks():
    roots = default_source_roots()
    names = {pathlib.Path(r).name for r in roots}
    assert "repro" in names
    assert {"scripts", "benchmarks"} <= names


def test_default_roots_lint_concurrency_clean():
    report = lint_concurrency()
    assert report.clean, report.format_text()


def test_program_context_parse_error_emits_s000():
    report = default_manager().run_program(
        [("bad.py", "def broken(:\n"), ("ok.py", "X = 1\n")])
    c = codes(report)
    assert c["S000"] == 1


# --------------------------------------------------------------------- #
# LockWatch: the runtime half
# --------------------------------------------------------------------- #

@pytest.fixture()
def watch():
    # save/restore any ambient watch (e.g. REPRO_LOCKWATCH=1 runs)
    prior = uninstall_watch()
    w = install_watch(LockWatch())
    try:
        yield w
    finally:
        uninstall_watch()
        if prior is not None:
            install_watch(prior)


def test_factories_return_plain_primitives_without_watch():
    prior = uninstall_watch()
    try:
        assert current_watch() is None
        assert isinstance(new_lock("X.a"), type(threading.Lock()))
        assert isinstance(new_rlock("X.a"), type(threading.RLock()))
        assert isinstance(new_condition("X.a"), threading.Condition)
    finally:
        if prior is not None:
            install_watch(prior)


def test_watch_records_acquisitions_and_edges(watch):
    a, b = new_lock("T.a"), new_lock("T.b")
    with a:
        with b:
            pass
    assert watch.acquisitions() == {"T.a": 1, "T.b": 1}
    assert watch.edges() == {("T.a", "T.b"): 1}
    assert watch.inversions() == []


def test_watch_detects_order_inversion(watch):
    a, b = new_lock("T.a"), new_lock("T.b")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    assert watch.inversions() == [["T.a", "T.b"]]


def test_watch_hold_times_and_long_holds(watch):
    watch.long_hold_s = 0.005
    lock = new_lock("T.slow")
    with lock:
        time.sleep(0.02)
    stats = watch.hold_stats()["T.slow"]
    assert stats["count"] == 1
    assert stats["max_s"] >= 0.02
    assert watch.long_holds() and watch.long_holds()[0][0] == "T.slow"


def test_watch_condition_wait_releases_and_reacquires(watch):
    cond = new_condition("T.cond")
    with cond:
        cond.wait(0.01)
    # enter + post-wait reacquire both go through the wrapper
    assert watch.acquisitions()["T.cond"] == 2
    assert watch.hold_stats()["T.cond"]["count"] == 2
    assert watch.inversions() == []


def test_watch_reentrant_rlock_is_not_an_edge(watch):
    lock = new_rlock("T.r")
    with lock:
        with lock:
            pass
    assert watch.edges() == {}
    assert watch.acquisitions()["T.r"] == 2


def test_cross_check_against_static_graph(watch):
    a, b = new_lock("T.a"), new_lock("T.b")
    with a:
        with b:
            pass
    result = watch.cross_check({("T.a", "T.b"), ("T.x", "T.y")})
    assert result["confirmed"] == [("T.a", "T.b")]
    assert result["novel"] == []
    assert result["unobserved"] == [("T.x", "T.y")]
    with b:
        with a:
            pass
    assert watch.cross_check({("T.a", "T.b")})["novel"] == \
        [("T.b", "T.a")]


def test_watch_publish_and_report(watch):
    with new_lock("T.a"):
        pass
    rep = watch.report()
    assert rep["acquisitions"] == {"T.a": 1}
    assert rep["inversions"] == []
    watch.publish()  # must not raise, with or without obs enabled


def test_watch_is_thread_safe(watch):
    lock = new_lock("T.hammer")
    counts = [0]

    def spin():
        for _ in range(200):
            with lock:
                counts[0] += 1

    threads = [threading.Thread(target=spin) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counts[0] == 800
    assert watch.acquisitions()["T.hammer"] == 800
    assert watch.hold_stats()["T.hammer"]["count"] == 800


def test_instrumented_serve_workload_has_no_inversions(watch):
    from repro.core import DNNOccu, DNNOccuConfig
    from repro.gpu import get_device
    from repro.models import ModelConfig, build_model
    from repro.serve import PredictorService
    from repro.serve.quality import QualityMonitor

    model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=4), seed=3)
    device = get_device("A100")
    graphs = [build_model(n, ModelConfig(batch_size=4))
              for n in ("lenet", "alexnet")]
    quality = QualityMonitor(sample_every=2, queue_depth=4)
    with PredictorService(model, device, quality=quality) as svc:
        errors: list = []

        def client():
            try:
                for g in graphs * 5:
                    svc.predict(g)
                    svc.stats()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        quality.flush()
    quality.close()
    assert not errors
    assert watch.acquisitions()  # the serve locks really were watched
    assert watch.inversions() == []
    # every observed ordering is predicted by the static C003 graph
    assert set(watch.edges()) <= static_acquisition_graph()
