"""repro.serve: micro-batched prediction service for the online path.

The contracts under test are the PR's acceptance gates:

* service predictions match direct ``model.predict`` — **bit-identical**
  for serial requests (single-request flushes dispatch the per-graph
  forward), within 1e-6 for batched/bulk paths, across the full zoo and
  under any worker/arrival interleaving;
* flushes trigger on max-batch-size OR the deadline, whichever first;
* the queue is bounded: overload sheds to the resilience fallback chain,
  counts the shed requests, and still resolves every ticket;
* repeated graphs hit the content-addressed result cache (no forward),
  warm structures hit the SPD/encoding memos (only the forward);
* scheduler runs (including chaos mode at fault rate 0) driven through
  ``PredictorService`` are bit-identical to direct-predictor runs.
"""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro import obs
from repro.core import DNNOccu, DNNOccuConfig
from repro.features import encode_graph
from repro.gpu import get_device, plan_colocation
from repro.models import ModelConfig, build_model, list_models
from repro.obs.metrics import Histogram
from repro.perf import (bucket_by_size, cache_key, clear_spd_memo, collate,
                        ensure_spd, graph_key)
from repro.resilience import (FallbackPredictor, FaultConfig, FaultInjector,
                              constant_tier, default_fallback_chain,
                              gnn_tier)
from repro.sched import OccuPacking, generate_workload, simulate
from repro.serve import (MicroBatcher, PredictorService, QueueFullError,
                         Ticket)

A100 = get_device("A100")


def _counter_values(registry) -> dict[str, float]:
    return {m.name: m.value for m in registry if m.kind == "counter"}


def _model(hidden: int = 32, seed: int = 7) -> DNNOccu:
    return DNNOccu(DNNOccuConfig(hidden=hidden, num_heads=4), seed=seed)


def _zoo_graphs() -> list:
    return [build_model(n, ModelConfig(batch_size=16))
            for n in list_models()]


def _small_graphs(count: int = 8) -> list:
    names = ("lenet", "alexnet", "rnn", "lstm")
    return [build_model(names[i % len(names)],
                        ModelConfig(batch_size=2 ** (1 + i // len(names))))
            for i in range(count)]


# --------------------------------------------------------------------- #
# equivalence: service vs direct predict
# --------------------------------------------------------------------- #

class TestEquivalence:
    def test_serial_requests_bit_identical_across_zoo(self):
        graphs = _zoo_graphs()
        model = _model()
        direct = np.array([model.predict(encode_graph(g, A100))
                           for g in graphs])
        with PredictorService(model, A100) as svc:
            served = np.array([svc.predict(g) for g in graphs])
        np.testing.assert_array_equal(served, direct)

    def test_predict_many_matches_direct_within_1e6(self):
        graphs = _zoo_graphs()
        model = _model()
        direct = np.array([model.predict(encode_graph(g, A100))
                           for g in graphs])
        with PredictorService(model, A100) as svc:
            bulk = svc.predict_many(graphs)
        np.testing.assert_allclose(bulk, direct, atol=1e-6, rtol=0)

    @pytest.mark.parametrize("threads", (2, 5))
    def test_concurrent_interleavings_deterministic(self, threads):
        """Any worker/arrival interleaving lands within 1e-6 of direct."""
        graphs = _small_graphs(12)
        model = _model()
        direct = np.array([model.predict(encode_graph(g, A100))
                           for g in graphs])
        for _ in range(2):  # two runs: interleavings differ, results agree
            with PredictorService(model, A100, deadline_s=0.005) as svc:
                out = np.zeros(len(graphs))

                def client(ids):
                    for i in ids:
                        out[i] = svc.predict(graphs[i])

                workers = [threading.Thread(target=client,
                                            args=(range(i, len(graphs),
                                                        threads),))
                           for i in range(threads)]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
            np.testing.assert_allclose(out, direct, atol=1e-6, rtol=0)

    def test_call_protocol_returns_mean_std(self):
        g = _small_graphs(1)[0]
        model = _model()
        with PredictorService(model, A100) as svc:
            assert svc.wants_graph
            mean, std = svc(g, A100)
        assert mean == model.predict(encode_graph(g, A100))
        assert std == 0.0


# --------------------------------------------------------------------- #
# micro-batcher flush behavior
# --------------------------------------------------------------------- #

class TestMicroBatcher:
    def test_full_batch_flush(self):
        with MicroBatcher(lambda items: [len(items)] * len(items),
                          max_batch_size=4, deadline_s=60.0) as mb:
            mb.pause()
            tickets = [mb.submit(i) for i in range(4)]
            mb.resume()
            assert [t.result(5.0) for t in tickets] == [4, 4, 4, 4]
            assert mb.flush_reasons["full"] == 1
            assert mb.flush_reasons["deadline"] == 0

    def test_deadline_flush_for_partial_batch(self):
        with MicroBatcher(lambda items: list(items),
                          max_batch_size=64, deadline_s=0.002) as mb:
            ticket = mb.submit("x")
            assert ticket.result(5.0) == "x"
            assert mb.flush_reasons["deadline"] == 1
            assert mb.flush_reasons["full"] == 0

    def test_oversized_backlog_splits_into_max_size_flushes(self):
        with MicroBatcher(lambda items: [len(items)] * len(items),
                          max_batch_size=3, deadline_s=60.0,
                          max_queue_depth=16) as mb:
            mb.pause()
            tickets = [mb.submit(i) for i in range(6)]
            mb.resume()
            sizes = [t.result(5.0) for t in tickets]
            assert sizes == [3, 3, 3, 3, 3, 3]
            assert mb.flush_reasons["full"] == 2

    def test_queue_bound_raises(self):
        with MicroBatcher(lambda items: list(items), max_batch_size=2,
                          deadline_s=60.0, max_queue_depth=2) as mb:
            mb.pause()
            mb.submit(1)
            mb.submit(2)
            with pytest.raises(QueueFullError):
                mb.submit(3)
            mb.resume()

    def test_close_drains_then_rejects(self):
        mb = MicroBatcher(lambda items: list(items),
                          max_batch_size=8, deadline_s=60.0)
        mb.pause()
        tickets = [mb.submit(i) for i in range(3)]
        mb.close()
        assert [t.result(5.0) for t in tickets] == [0, 1, 2]
        with pytest.raises(RuntimeError):
            mb.submit(4)

    def test_dispatch_error_fails_every_ticket(self):
        def boom(items):
            raise ValueError("kaput")

        with MicroBatcher(boom, max_batch_size=2, deadline_s=60.0) as mb:
            mb.pause()
            tickets = [mb.submit(i) for i in range(2)]
            mb.resume()
            for t in tickets:
                with pytest.raises(ValueError, match="kaput"):
                    t.result(5.0)

    def test_ticket_timeout(self):
        with pytest.raises(TimeoutError):
            Ticket().result(timeout=0.01)

    def test_invalid_knobs_rejected(self):
        for kw in (dict(max_batch_size=0), dict(deadline_s=0.0),
                   dict(max_batch_size=8, max_queue_depth=4)):
            with pytest.raises(ValueError):
                MicroBatcher(lambda items: items, **kw)

    def test_stats_snapshots_consistent_under_concurrent_dispatch(self):
        """Regression for the C002 race on the dispatch counters.

        Before `stats()` snapshotted under the batcher's condition, a
        poller could read `batches_dispatched` after a flush but
        `flush_reasons` before it, observing a torn state.  Hammer the
        batcher from several client threads while polling, and require
        every snapshot to be internally consistent.
        """
        graphs = _small_graphs(6)
        torn: list[dict] = []
        stop = threading.Event()
        with PredictorService(_model(), A100, max_batch_size=2,
                              deadline_s=0.001) as svc:
            def poller():
                while not stop.is_set():
                    snap = svc.batcher.stats()
                    if (snap["batches_dispatched"]
                            != sum(snap["flush_reasons"].values())
                            or snap["requests_dispatched"]
                            < snap["batches_dispatched"]):
                        torn.append(snap)

            def client():
                for _ in range(5):
                    for g in graphs:
                        svc.predict(g)

            threads = [threading.Thread(target=poller)] + \
                [threading.Thread(target=client) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads[1:]:
                t.join()
            stop.set()
            threads[0].join()
            final = svc.stats()
        assert torn == []
        # repeat rounds are result-cache hits, so only the lower bound is
        # exact: every graph was dispatched at least once
        assert final["requests_dispatched"] >= len(graphs)
        assert final["batches_dispatched"] == \
            sum(final["flush_reasons"].values())


# --------------------------------------------------------------------- #
# overload shedding into the resilience chain
# --------------------------------------------------------------------- #

class TestOverloadShedding:
    def test_flood_sheds_counts_and_resolves(self):
        graphs = _small_graphs(10)
        with obs.observed() as (_, registry):
            with PredictorService(_model(), A100, max_batch_size=2,
                                  max_queue_depth=3) as svc:
                svc.batcher.pause()
                tickets = [svc.predict_async(g) for g in graphs]
                shed = svc.stats()["shed"]
                assert shed == len(graphs) - 3
                # shed tickets resolve immediately via the constant tier
                assert svc.fallback.tier_counts["constant"] == shed
                svc.batcher.resume()
                values = [t.result(10.0) for t in tickets]
        assert all(0.0 <= v <= 1.0 for v in values)
        counts = _counter_values(registry)
        assert counts["serve_shed_total"] == shed
        assert counts["serve_requests_total"] == len(graphs)

    def test_shed_uses_configured_fallback_tiers(self):
        graphs = _small_graphs(6)
        oracle = _model(seed=99)
        chain = default_fallback_chain(model=oracle)
        with PredictorService(_model(), A100, max_batch_size=2,
                              max_queue_depth=2, fallback=chain) as svc:
            svc.batcher.pause()
            tickets = [svc.predict_async(g) for g in graphs]
            assert chain.tier_counts["gnn"] == svc.stats()["shed"] > 0
            svc.batcher.resume()
            [t.result(10.0) for t in tickets]

    def test_failing_tier_degrades_to_constant(self):
        def broken(graph, device):
            raise RuntimeError("tier down")

        chain = FallbackPredictor([("broken", broken),
                                   constant_tier(0.75)])
        with PredictorService(_model(), A100, max_batch_size=2,
                              max_queue_depth=2, fallback=chain) as svc:
            svc.batcher.pause()
            tickets = [svc.predict_async(g) for g in _small_graphs(4)]
            svc.batcher.resume()
            values = [t.result(10.0) for t in tickets]
        shed_values = values[2:]  # first 2 filled the queue
        assert shed_values == [0.75, 0.75]
        assert chain.tier_counts["constant"] == 2


# --------------------------------------------------------------------- #
# caches: result / encoding / SPD memo
# --------------------------------------------------------------------- #

class TestCaches:
    def test_result_cache_hit_skips_forward(self):
        g = _small_graphs(1)[0]
        model = _model()
        forwards = []
        original = model.forward

        def counting_forward(feats):
            forwards.append(1)
            return original(feats)

        model.forward = counting_forward
        with obs.observed() as (_, registry):
            with PredictorService(model, A100) as svc:
                first = svc.predict(g)
                n_after_first = len(forwards)
                second = svc.predict(g)
        assert first == second
        assert len(forwards) == n_after_first == 1
        counts = _counter_values(registry)
        assert counts["serve_result_cache_hits_total"] == 1
        assert counts["serve_result_cache_misses_total"] == 1

    def test_encoding_memo_survives_result_cache_clear(self):
        g = _small_graphs(1)[0]
        with obs.observed() as (_, registry):
            with PredictorService(_model(), A100) as svc:
                svc.predict(g)
                svc.session.results.clear()
                svc.predict(g)  # re-forwards, but must not re-encode
        counts = _counter_values(registry)
        assert counts["serve_encoding_cache_misses_total"] == 1
        assert counts["serve_encoding_cache_hits_total"] == 1
        assert counts["serve_result_cache_misses_total"] == 2

    def test_spd_memo_shared_across_feature_objects(self):
        """Satellite bugfix: SPD is keyed by content, not per-object."""
        clear_spd_memo()
        g = build_model("alexnet", ModelConfig())
        f1, f2 = encode_graph(g, A100), encode_graph(g, A100)
        assert not hasattr(f2, "_spd_cache")
        with obs.observed() as (_, registry):
            spd1 = ensure_spd(f1)
            spd2 = ensure_spd(f2)
        assert spd1 is spd2  # same matrix object, no recompute
        counts = _counter_values(registry)
        assert counts["perf_spd_memo_misses_total"] == 1
        assert counts["perf_spd_memo_hits_total"] == 1

    def test_model_spd_delegates_to_memo(self):
        clear_spd_memo()
        g = build_model("lenet", ModelConfig())
        model = _model()
        model.predict(encode_graph(g, A100))  # computes + memoizes SPD
        fresh = encode_graph(g, A100)
        with obs.observed() as (_, registry):
            model.predict(fresh)
        counts = _counter_values(registry)
        assert counts.get("perf_spd_memo_hits_total") == 1
        assert "perf_spd_memo_misses_total" not in counts

    def test_graph_key_ignores_simulator_version(self, monkeypatch):
        g = build_model("lenet", ModelConfig())
        before_graph, before_cache = graph_key(g, A100), cache_key(g, A100)
        import repro.perf.cache as cache_mod
        monkeypatch.setattr(cache_mod, "SIMULATOR_VERSION", 999)
        assert graph_key(g, A100) == before_graph
        assert cache_key(g, A100) != before_cache

    def test_graph_key_separates_graph_and_device(self):
        g1 = build_model("lenet", ModelConfig())
        g2 = build_model("lenet", ModelConfig(batch_size=64))
        assert graph_key(g1, A100) != graph_key(g2, A100)
        assert graph_key(g1, A100) != graph_key(g1, get_device("P40"))


# --------------------------------------------------------------------- #
# size-bucketed collate (satellite perf fix)
# --------------------------------------------------------------------- #

class TestBucketedCollate:
    def test_bucketing_reduces_pad_waste(self):
        # Interleaved small/large arrivals: the case micro-batch queues
        # actually see, and the worst case for arrival-order collate.
        names = ("lenet", "bert", "alexnet", "vit-t") * 2
        feats = [encode_graph(build_model(n, ModelConfig()), A100)
                 for n in names]

        def total_waste(chunks) -> float:
            waste = 0.0
            for chunk in chunks:
                batch = collate(chunk)
                waste += batch.pad_waste * batch.num_graphs
            return waste / len(feats)

        arrival = total_waste([feats[i:i + 4]
                               for i in range(0, len(feats), 4)])
        bucketed = total_waste([chunk for _, chunk
                                in bucket_by_size(feats, 4)])
        # measured: 0.597 -> 0.206; require at least a 2x reduction
        assert bucketed < 0.5 * arrival, \
            f"bucketing did not reduce pad waste ({arrival:.3f} -> " \
            f"{bucketed:.3f})"

    def test_bucketed_predict_batch_preserves_order(self):
        feats = [encode_graph(build_model(n, ModelConfig()), A100)
                 for n in ("vit-t", "lenet", "rnn", "resnet-18")]
        model = _model()
        per = np.array([model.predict(f) for f in feats])
        bucketed = model.predict_batch(feats, batch_size=2)
        np.testing.assert_allclose(bucketed, per, atol=1e-6, rtol=0)

    def test_bucket_by_size_partitions_all_indices(self):
        feats = [encode_graph(build_model(n, ModelConfig()), A100)
                 for n in ("vit-t", "lenet", "rnn")]
        chunks = bucket_by_size(feats, 2)
        seen = sorted(i for idx, _ in chunks for i in idx)
        assert seen == [0, 1, 2]
        for idx, chunk in chunks:
            assert [feats[i] for i in idx] == chunk

    def test_bucket_by_size_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            bucket_by_size([], 0)


# --------------------------------------------------------------------- #
# scheduler / colocation adoption
# --------------------------------------------------------------------- #

class TestSchedulerAdoption:
    MIX = ("lenet", "alexnet", "rnn", "lstm")

    def _workloads(self):
        model = _model()

        def direct_predictor(feats):
            # serve: direct-predict-ok -- the pre-PR oracle path this
            # test asserts bit-identity against
            return model.predict(feats)

        jobs_direct = generate_workload(
            self.MIX, A100, 8, seed=3, predictor=direct_predictor,
            iterations_range=(50, 200))
        with PredictorService(model, A100) as svc:
            jobs_served = generate_workload(
                self.MIX, A100, 8, seed=3, predictor=svc,
                iterations_range=(50, 200))
        return jobs_direct, jobs_served

    def test_workload_predictions_bit_identical(self):
        jobs_direct, jobs_served = self._workloads()
        for a, b in zip(jobs_direct, jobs_served):
            assert a.predicted_occupancy == b.predicted_occupancy
            assert a.predicted_std == b.predicted_std == 0.0

    def test_simulation_bit_identical_incl_chaos_at_zero_faults(self):
        jobs_direct, jobs_served = self._workloads()
        for chaos in (False, True):
            kw = {"faults": FaultInjector(FaultConfig(crash_prob=0.0), 5)} \
                if chaos else {}
            res_a = simulate(jobs_direct, 2, OccuPacking(), **kw)
            res_b = simulate(jobs_served, 2, OccuPacking(), **kw)
            assert res_a.makespan_s == res_b.makespan_s
            assert res_a.avg_jct == res_b.avg_jct
            assert res_a.busy_integral_s == res_b.busy_integral_s
            assert res_a.nvml_integral_s == res_b.nvml_integral_s

    def test_plan_colocation_packs_under_cap(self):
        graphs = _small_graphs(8)
        with PredictorService(_model(), A100) as svc:
            groups = plan_colocation(svc, graphs, cap=1.0)
            occs = svc.predict_many(graphs)  # all cache hits
        seen = sorted(i for grp in groups for i in grp)
        assert seen == list(range(len(graphs)))
        for grp in groups:
            assert sum(occs[i] for i in grp) <= 1.0 + 1e-9

    def test_plan_colocation_max_residents(self):
        graphs = _small_graphs(6)
        with PredictorService(_model(), A100) as svc:
            groups = plan_colocation(svc, graphs, cap=10.0,
                                     max_residents=2)
        assert all(len(grp) <= 2 for grp in groups)
        assert plan_colocation.__module__ == "repro.gpu.colocation"

    def test_plan_colocation_empty(self):
        with PredictorService(_model(), A100) as svc:
            assert plan_colocation(svc, []) == []


# --------------------------------------------------------------------- #
# metrics: latency histogram + quantiles
# --------------------------------------------------------------------- #

class TestServeMetrics:
    def test_histogram_quantile_interpolates(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.0) == pytest.approx(0.0)
        # rank 2 of 4 lands mid-way through the (1, 2] bucket
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(4.0)
        assert math.isnan(Histogram("e", buckets=(1.0,)).quantile(0.5))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_quantile_overflow_clamps_to_last_bound(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(100.0)  # above every bucket
        assert h.quantile(0.99) == 1.0

    def test_latency_and_queue_metrics_recorded(self):
        graphs = _small_graphs(4)
        with obs.observed() as (_, registry):
            with PredictorService(_model(), A100) as svc:
                for g in graphs:
                    svc.predict(g)
                q = svc.latency_quantiles()
        assert 0.0 < q["p50"] <= q["p90"] <= q["p99"]
        names = {m.name for m in registry}
        assert {"serve_latency_seconds", "serve_batch_size",
                "serve_queue_depth", "serve_requests_total"} <= names

    def test_stats_snapshot_shape(self):
        with PredictorService(_model(), A100) as svc:
            svc.predict(_small_graphs(1)[0])
            stats = svc.stats()
        assert stats["requests"] == 1 and stats["shed"] == 0
        assert stats["result_cache_entries"] == 1
        assert stats["batches_dispatched"] == 1
        assert stats["flush_reasons"]["deadline"] == 1


# --------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------- #

class TestLifecycle:
    def test_close_degrades_new_requests_to_fallback(self):
        svc = PredictorService(_model(), A100)
        g = _small_graphs(1)[0]
        svc.predict(g)
        svc.close()
        # post-close submissions are not errors: they route
        # synchronously through the fallback chain
        value = svc.predict(_small_graphs(2)[1])
        assert 0.0 <= value <= 1.0
        assert svc.fallback.tier_counts["constant"] == 1
        assert svc.stats()["closed"]

    def test_cached_model_session_reusable_across_services(self):
        from repro.serve import ModelSession
        session = ModelSession(_model(), A100)
        g = _small_graphs(1)[0]
        with PredictorService(session=session) as svc:
            first = svc.predict(g)
        with PredictorService(session=session) as svc:
            # served from the shared session's result cache: no forward
            assert svc.predict(g) == first
            assert svc.stats()["batches_dispatched"] == 0

    def test_service_requires_model_or_session(self):
        with pytest.raises(ValueError):
            PredictorService()

    def test_gnn_tier_still_bit_identical_through_service(self):
        """A gnn fallback tier and the service agree exactly."""
        model = _model()
        g = _small_graphs(1)[0]
        name, fn = gnn_tier(model, preflight=False)
        with PredictorService(model, A100) as svc:
            assert svc.predict(g) == fn(g, A100)


# --------------------------------------------------------------------- #
# lifecycle: idempotent close, post-close degradation, deadlines
# --------------------------------------------------------------------- #

class TestCloseAndDeadlines:
    def test_close_is_idempotent(self):
        svc = PredictorService(_model(), A100)
        svc.predict(_small_graphs(1)[0])
        svc.close()
        svc.close()  # second close is a no-op, not an error
        assert svc.stats()["closed"]

    def test_close_with_concurrent_inflight_requests(self):
        """In-flight predict_async tickets resolve across close()."""
        graphs = _small_graphs(8)
        svc = PredictorService(_model(), A100, max_batch_size=4)
        tickets = [svc.predict_async(g) for g in graphs]
        svc.close()  # drain flush serves whatever is still queued
        values = [t.result(10.0) for t in tickets]
        assert all(0.0 <= v <= 1.0 for v in values)
        # post-close submissions degrade synchronously, never raise
        late = svc.predict_async(graphs[0])
        assert late.done()
        assert 0.0 <= late.result(0.0) <= 1.0

    def test_ticket_result_is_one_shot(self):
        t = Ticket()
        assert t.set_result(0.25)
        assert not t.set_result(0.75)
        assert not t.set_exception(RuntimeError("late"))
        assert t.result(0.0) == 0.25

    def test_ticket_exception_is_one_shot(self):
        t = Ticket()
        assert t.set_exception(RuntimeError("down"))
        assert not t.set_result(0.5)
        with pytest.raises(RuntimeError):
            t.result(0.0)

    def test_predict_timeout_sheds_to_fallback(self):
        g = _small_graphs(1)[0]
        with obs.observed() as (_, registry):
            with PredictorService(_model(), A100) as svc:
                svc.batcher.pause()
                value = svc.predict(g, timeout=0.05)
                assert 0.0 <= value <= 1.0
                assert svc.fallback.tier_counts["constant"] == 1
                assert svc.stats()["deadline_shed"] == 1
                svc.batcher.resume()
        counts = _counter_values(registry)
        assert counts["serve_deadline_shed_total"] == 1

    def test_late_result_after_deadline_is_discarded(self):
        """The dispatcher's late answer never double-resolves."""
        g = _small_graphs(1)[0]
        with PredictorService(_model(), A100) as svc:
            svc.batcher.pause()
            shed_value = svc.predict(g, timeout=0.05)
            svc.batcher.resume()
            # let the paused request flush; its result lands in the
            # result cache but must not rewrite the shed ticket
            direct = _model().predict(encode_graph(g, A100))
            second = svc.predict(g)
        assert shed_value == svc.fallback(g, A100)[0]
        assert second == direct  # fresh request sees the real answer

    def test_timeout_none_still_blocks_for_real_answer(self):
        g = _small_graphs(1)[0]
        model = _model()
        with PredictorService(model, A100) as svc:
            assert svc.predict(g) == model.predict(encode_graph(g, A100))
        assert svc.stats()["deadline_shed"] == 0
