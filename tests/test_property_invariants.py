"""Cross-module property-based tests (hypothesis) on system invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import encode_graph, node_feature_dim
from repro.gpu import A100, P40, RTX2080TI, profile_graph
from repro.models import ModelConfig, build_model
from repro.sched import InterferenceModel, Job, OccuPacking, SlotPacking, \
    simulate

SMALL_MODELS = ("lenet", "alexnet", "rnn", "lstm")


class TestProfilerInvariants:
    @given(st.sampled_from(SMALL_MODELS), st.integers(2, 6),
           st.sampled_from(["A100", "RTX2080Ti", "P40"]))
    @settings(max_examples=25, deadline=None)
    def test_profile_invariants(self, model_name, batch_exp, device_name):
        from repro.gpu import get_device
        device = get_device(device_name)
        cfg = ModelConfig(batch_size=2**batch_exp)
        prof = profile_graph(build_model(model_name, cfg), device,
                             check_memory=False)
        assert 0.0 < prof.occupancy <= 1.0
        assert 0.0 < prof.nvml_utilization <= 1.0
        assert prof.busy_time_s <= prof.wall_time_s
        assert all(r.occupancy <= r.theoretical_occupancy + 1e-12
                   for r in prof.records)
        # min <= duration-weighted mean <= max over kernels.
        assert prof.aggregate_occupancy("min") - 1e-12 <= prof.occupancy \
            <= prof.aggregate_occupancy("max") + 1e-12

    @given(st.sampled_from(SMALL_MODELS), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_flops_scale_with_batch(self, model_name, factor):
        base = build_model(model_name, ModelConfig(batch_size=8)).total_flops()
        big = build_model(model_name,
                          ModelConfig(batch_size=8 * factor)).total_flops()
        # FLOPs grow (sub)linearly-at-least-proportionally with batch.
        assert big >= base * factor * 0.9


class TestFeatureInvariants:
    @given(st.sampled_from(SMALL_MODELS), st.integers(3, 7))
    @settings(max_examples=15, deadline=None)
    def test_encoding_shape_stable(self, model_name, batch_exp):
        g = build_model(model_name, ModelConfig(batch_size=2**batch_exp))
        gf = encode_graph(g, A100)
        assert gf.node_features.shape == (g.num_nodes, node_feature_dim())
        assert np.all(np.isfinite(gf.node_features))
        assert np.all(np.isfinite(gf.edge_features))
        assert np.all(gf.edge_index < g.num_nodes)


class TestSchedulerInvariants:
    @staticmethod
    def _jobs(seed: int, n: int) -> list[Job]:
        rng = np.random.default_rng(seed)
        return [Job(i, "m", float(rng.uniform(1, 20)),
                    float(rng.uniform(0.05, 0.8)),
                    float(rng.uniform(0.1, 0.9)))
                for i in range(n)]

    @given(st.integers(0, 50), st.integers(1, 10), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_all_work_conserved(self, seed, n_jobs, n_gpus):
        jobs = self._jobs(seed, n_jobs)
        res = simulate(jobs, n_gpus, OccuPacking())
        # Every job completes with zero remaining work.
        assert all(abs(j.remaining_s) < 1e-6 for j in res.jobs)
        # Makespan is at least the biggest single job.
        assert res.makespan_s >= max(j.duration_s for j in jobs) - 1e-9
        # Busy time cannot exceed GPU-seconds available.
        assert res.busy_integral_s <= res.makespan_s * n_gpus + 1e-9
        # NVML integral is bounded by busy time.
        assert res.nvml_integral_s <= res.busy_integral_s + 1e-9

    @given(st.integers(0, 50), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_slot_packing_exact_serial_makespan(self, seed, n_jobs):
        jobs = self._jobs(seed, n_jobs)
        res = simulate(jobs, 1, SlotPacking())
        assert res.makespan_s == pytest.approx(
            sum(j.duration_s for j in jobs))
        # No co-location ever: stretch is exactly 1 for every job.
        assert all(j.stretch == pytest.approx(1.0) for j in res.jobs)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_interference_monotone_in_each_co_runner(self, own, a, b):
        m = InterferenceModel()
        assert m.slowdown(own, [a, b]) >= m.slowdown(own, [a]) - 1e-12
