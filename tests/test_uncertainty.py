"""Uncertainty-aware prediction and packing tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DNNOccu, DNNOccuConfig, EnsemblePredictor
from repro.sched import Job, OccuPacking


def job(jid=0, occ=0.3, pred=0.3, std=0.0):
    return Job(job_id=jid, model_name="m", duration_s=10.0, occupancy=occ,
               nvml_utilization=0.5, predicted_occupancy=pred,
               predicted_std=std)


class TestEnsembleUncertainty:
    @pytest.fixture(scope="class")
    def ensemble(self):
        members = [DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=s)
                   for s in range(3)]
        return EnsemblePredictor(members)

    def test_mean_matches_predict(self, ensemble, tiny_dataset):
        f = tiny_dataset[0].features
        mean, _ = ensemble.predict_with_std(f)
        assert mean == pytest.approx(ensemble.predict(f))

    def test_std_nonnegative_and_positive_for_fresh_members(self, ensemble,
                                                            tiny_dataset):
        _, std = ensemble.predict_with_std(tiny_dataset[0].features)
        assert std > 0.0  # untrained members disagree

    def test_identical_members_zero_std(self, tiny_dataset):
        m = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=0)
        ens = EnsemblePredictor([m, m])
        _, std = ens.predict_with_std(tiny_dataset[0].features)
        assert std == pytest.approx(0.0)


class TestRiskAwarePacking:
    def test_margin_blocks_uncertain_colocation(self):
        p = OccuPacking(cap=1.0, uncertainty_margin=2.0)
        certain = job(0, pred=0.45, std=0.0)
        uncertain = job(1, pred=0.45, std=0.2)  # 0.45+0.4 = 0.85 demand
        assert p.admits(certain, [certain])          # 0.9 <= 1.0
        assert not p.admits(uncertain, [certain])    # 0.45 + 0.85 > 1.0

    def test_zero_margin_ignores_std(self):
        p = OccuPacking(cap=1.0, uncertainty_margin=0.0)
        a = job(0, pred=0.45, std=0.9)
        b = job(1, pred=0.45, std=0.9)
        assert p.admits(b, [a])

    def test_trace_roundtrip_preserves_std(self, tmp_path):
        from repro.sched import load_trace, save_trace
        path = str(tmp_path / "t.json")
        save_trace([job(0, std=0.12)], path)
        assert load_trace(path)[0].predicted_std == pytest.approx(0.12)

    def test_workload_tuple_predictor(self):
        from repro.gpu import P40
        from repro.sched import generate_workload
        jobs = generate_workload(["lenet"], P40, 2, seed=0,
                                 predictor=lambda f: (0.4, 0.05))
        assert all(j.predicted_occupancy == pytest.approx(0.4)
                   for j in jobs)
        assert all(j.predicted_std == pytest.approx(0.05) for j in jobs)
