"""Dataset-generation tests (Table II domains, splits, filters)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (Dataset, SEEN_MODELS, UNSEEN_MODELS, config_domain,
                        generate_dataset, sample_config)
from repro.gpu import A100, P40
from repro.models import list_models


class TestDomains:
    def test_cnn_domain_matches_table2(self):
        d = config_domain("resnet-18")
        assert d["batch_size"] == tuple(range(16, 129, 4))
        assert d["in_channels"] == tuple(range(1, 11))

    def test_rnn_domain_matches_table2(self):
        d = config_domain("lstm")
        assert d["batch_size"][0] == 128 and d["batch_size"][-1] == 512
        assert d["seq_len"][0] == 16 and d["seq_len"][-1] == 128

    def test_transformer_domain_matches_table2(self):
        d = config_domain("bert")
        assert d["seq_len"][0] == 20 and d["seq_len"][-1] == 512

    def test_every_model_has_domain(self):
        for name in list_models():
            assert config_domain(name)

    def test_sample_within_domain(self, rng):
        for _ in range(20):
            cfg = sample_config("vgg-11", rng)
            assert 16 <= cfg.batch_size <= 128
            assert 1 <= cfg.in_channels <= 10

    def test_sampling_deterministic_by_seed(self):
        a = sample_config("vgg-11", np.random.default_rng(5))
        b = sample_config("vgg-11", np.random.default_rng(5))
        assert a == b


class TestSplitConstants:
    def test_paper_split_membership(self):
        assert "vit-t" in SEEN_MODELS and "lenet" in SEEN_MODELS
        assert "resnet-50" in UNSEEN_MODELS and "bert" in UNSEEN_MODELS
        assert not set(SEEN_MODELS) & set(UNSEEN_MODELS)

    def test_all_split_models_in_zoo(self):
        zoo = set(list_models())
        assert set(SEEN_MODELS) <= zoo
        assert set(UNSEEN_MODELS) <= zoo


class TestGeneration:
    def test_sizes(self, tiny_dataset):
        assert len(tiny_dataset) == 12  # 2 models x 1 device x 6 configs

    def test_sample_fields(self, tiny_dataset):
        s = tiny_dataset[0]
        assert 0.0 < s.occupancy < 1.0
        assert 0.0 < s.nvml_utilization <= 1.0
        assert s.num_nodes == s.features.num_nodes
        assert s.device_name == "A100"

    def test_labels_vector(self, tiny_dataset):
        labels = tiny_dataset.labels()
        assert labels.shape == (12,)
        assert np.all((labels > 0) & (labels < 1))

    def test_deterministic_generation(self):
        a = generate_dataset(["lenet"], [A100], 3, seed=5)
        b = generate_dataset(["lenet"], [A100], 3, seed=5)
        np.testing.assert_array_equal(a.labels(), b.labels())

    def test_different_seeds_differ(self):
        a = generate_dataset(["lenet"], [A100], 3, seed=5)
        b = generate_dataset(["lenet"], [A100], 3, seed=6)
        assert not np.array_equal(a.labels(), b.labels())

    def test_no_duplicate_configs_per_model_device(self, tiny_dataset):
        keys = [(s.model_name, s.device_name, s.config.batch_size,
                 s.config.in_channels, s.config.seq_len)
                for s in tiny_dataset]
        assert len(keys) == len(set(keys))

    def test_multi_device(self, mixed_dataset):
        devices = {s.device_name for s in mixed_dataset}
        assert devices == {"A100", "P40"}


class TestDatasetOps:
    def test_filter_models(self, mixed_dataset):
        sub = mixed_dataset.filter_models(["rnn"])
        assert len(sub) > 0
        assert all(s.model_name == "rnn" for s in sub)

    def test_filter_devices(self, mixed_dataset):
        sub = mixed_dataset.filter_devices(["P40"])
        assert all(s.device_name == "P40" for s in sub)

    def test_split_partitions(self, mixed_dataset, rng):
        train, test = mixed_dataset.split(0.75, rng)
        assert len(train) + len(test) == len(mixed_dataset)
        assert len(train) == round(0.75 * len(mixed_dataset))

    def test_split_no_overlap(self, mixed_dataset, rng):
        train, test = mixed_dataset.split(0.5, rng)
        train_ids = {id(s) for s in train}
        assert all(id(s) not in train_ids for s in test)

    def test_indexing_and_iteration(self, tiny_dataset):
        assert tiny_dataset[0] is list(iter(tiny_dataset))[0]
