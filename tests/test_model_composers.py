"""Tests for the shared model-zoo composers (attention blocks, MLP blocks,
window partitioning arithmetic)."""

from __future__ import annotations

import pytest

from repro.graph import GraphBuilder
from repro.models.common import (ModelConfig, classifier_head, conv_bn_act,
                                 mlp_block, multi_head_attention,
                                 transformer_encoder_block)


@pytest.fixture()
def b():
    return GraphBuilder("t")


class TestAttentionComposer:
    def test_output_shape_preserved(self, b):
        x = b.input((2, 10, 16))
        y = multi_head_attention(b, x, num_heads=4)
        assert y.shape == (2, 10, 16)

    def test_invalid_heads_raises(self, b):
        x = b.input((2, 10, 16))
        with pytest.raises(ValueError):
            multi_head_attention(b, x, num_heads=3)

    def test_emits_expected_operator_mix(self, b):
        x = b.input((2, 10, 16))
        multi_head_attention(b, x, num_heads=2)
        hist = b.graph.op_type_histogram()
        assert hist["Gemm"] == 2        # fused QKV + output projection
        assert hist["MatMul"] == 2      # QK^T and PV
        assert hist["Softmax"] == 1
        assert hist["Slice"] == 3       # Q, K, V splits
        assert hist["Scale"] == 1       # 1/sqrt(d)

    def test_score_matrix_shape(self, b):
        bs, t, d, h = 2, 10, 16, 2
        x = b.input((bs, t, d))
        multi_head_attention(b, x, num_heads=h)
        softmax_node = next(n for n in b.graph.nodes.values()
                            if n.op_type == "Softmax")
        assert softmax_node.output_shape == (bs * h, t, t)

    def test_attention_flops_quadratic_in_seq(self, b):
        x1 = b.input((1, 8, 16))
        multi_head_attention(b, x1, 2)
        f8 = b.graph.total_flops()
        b2 = GraphBuilder("t2")
        x2 = b2.input((1, 32, 16))
        multi_head_attention(b2, x2, 2)
        f32 = b2.graph.total_flops()
        # 4x tokens: QK^T term grows 16x, projections 4x -> >4x total.
        assert f32 > 4 * f8


class TestEncoderBlock:
    def test_shape_and_residuals(self, b):
        x = b.input((2, 10, 16))
        y = transformer_encoder_block(b, x, num_heads=2)
        assert y.shape == (2, 10, 16)
        hist = b.graph.op_type_histogram()
        assert hist["Add"] == 2         # attention + FFN residuals
        assert hist["LayerNorm"] == 2

    def test_mlp_block_expansion(self, b):
        x = b.input((2, 10, 16))
        mlp_block(b, x, hidden_mult=4)
        gemms = [n for n in b.graph.nodes.values() if n.op_type == "Gemm"]
        assert {g.attrs["out_features"] for g in gemms} == {64, 16}


class TestCNNComposers:
    def test_conv_bn_act_chain(self, b):
        x = b.input((2, 3, 8, 8))
        conv_bn_act(b, x, 4, 3, padding=1)
        hist = b.graph.op_type_histogram()
        assert hist == {"Input": 1, "Conv2d": 1, "BatchNorm2d": 1,
                        "ReLU": 1}

    def test_conv_ln_gelu_variant(self, b):
        x = b.input((2, 3, 8, 8))
        conv_bn_act(b, x, 4, 3, padding=1, act="gelu", norm="ln")
        hist = b.graph.op_type_histogram()
        assert "LayerNorm" in hist and "GELU" in hist

    def test_classifier_head_flattens(self, b):
        x = b.input((2, 8, 4, 4))
        y = classifier_head(b, x, 10)
        assert y.shape == (2, 10)
        assert "Flatten" in b.graph.op_type_histogram()

    def test_classifier_head_skips_flatten_for_2d(self, b):
        x = b.input((2, 32))
        classifier_head(b, x, 10)
        assert "Flatten" not in b.graph.op_type_histogram()


class TestModelConfig:
    def test_replace_returns_new(self):
        a = ModelConfig(batch_size=8)
        c = a.replace(batch_size=16)
        assert a.batch_size == 8 and c.batch_size == 16

    def test_frozen(self):
        with pytest.raises(Exception):
            ModelConfig().batch_size = 5


class TestSwinWindowArithmetic:
    def test_window_partition_counts(self):
        """Swin's 224-input stage resolutions (56, 28, 14, 7) all divide
        by the window size 7 — the builder relies on this."""
        for hw in (56, 28, 14, 7):
            assert hw % 7 == 0

    def test_swin_attention_batch_is_windows(self):
        from repro.models import build_swin
        g = build_swin(ModelConfig(batch_size=2), "tiny")
        # First-stage window attention: (B * 8 * 8 windows, 49, 49) scores.
        softmax_nodes = [n for n in g.nodes.values()
                         if n.op_type == "Softmax"]
        first = min(softmax_nodes, key=lambda n: n.node_id)
        assert first.output_shape[-2:] == (49, 49)
        assert first.output_shape[0] % (2 * 64) == 0
