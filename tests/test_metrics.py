"""Metric tests: MRE/MSE definitions and bucketing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import bucketize, evaluate_predictions, mre, mse


class TestMRE:
    def test_hand_computed(self):
        assert mre([1.1, 0.9], [1.0, 1.0]) == pytest.approx(0.1)

    def test_perfect_prediction(self):
        assert mre([0.4, 0.6], [0.4, 0.6]) == 0.0

    def test_zero_truth_raises(self):
        with pytest.raises(ValueError):
            mre([1.0], [0.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mre([1.0, 2.0], [1.0])

    def test_asymmetry_in_truth(self):
        # Same absolute error, smaller truth -> larger MRE.
        assert mre([0.2], [0.1]) > mre([0.6], [0.5])


class TestMSE:
    def test_hand_computed(self):
        assert mse([1.0, 3.0], [0.0, 0.0]) == pytest.approx(5.0)

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        assert mse(rng.normal(size=10), rng.normal(size=10)) >= 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse([1.0], [1.0, 2.0])


class TestEvaluate:
    def test_keys_and_percent_scaling(self):
        ev = evaluate_predictions([1.1], [1.0])
        assert ev["mre_percent"] == pytest.approx(10.0)
        assert ev["mse"] == pytest.approx(0.01)


class TestBucketize:
    def test_partition(self):
        vals = [5, 15, 25, 35, 45]
        masks = bucketize(vals, [0, 20, 40])
        assert [list(m) for m in masks] == [[0, 1], [2, 3], [4]]

    def test_every_value_in_exactly_one_bucket(self):
        rng = np.random.default_rng(1)
        vals = rng.integers(0, 100, size=50)
        masks = bucketize(vals, [0, 30, 60])
        combined = np.concatenate(masks)
        assert sorted(combined) == list(range(50))

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_bucketize_total_coverage(self, vals):
        masks = bucketize(vals, [0, 100, 500])
        assert sum(len(m) for m in masks) == len(vals)
