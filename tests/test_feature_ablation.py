"""Tests for the feature-block registry and ablation helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import (encode_graph, feature_blocks, node_feature_dim,
                            zero_feature_block)
from repro.gpu import A100
from repro.models import ModelConfig, build_model


@pytest.fixture(scope="module")
def gf():
    return encode_graph(build_model("alexnet", ModelConfig(batch_size=16)),
                        A100)


class TestFeatureBlocks:
    def test_blocks_partition_vector(self):
        blocks = feature_blocks()
        covered = sorted((s.start, s.stop) for s in blocks.values())
        assert covered[0][0] == 0
        assert covered[-1][1] == node_feature_dim()
        for (a, b), (c, d) in zip(covered, covered[1:]):
            assert b == c  # contiguous, no gaps or overlaps

    def test_expected_block_names(self):
        assert set(feature_blocks()) == {
            "op_type", "hyperparams", "sizes", "flops", "out_size",
            "shape", "batch_linear", "device"}


class TestZeroFeatureBlock:
    def test_zeroes_only_target_block(self, gf):
        blocks = feature_blocks()
        z = zero_feature_block(gf, "flops")
        assert np.all(z.node_features[:, blocks["flops"]] == 0.0)
        # Other blocks untouched.
        np.testing.assert_array_equal(
            z.node_features[:, blocks["op_type"]],
            gf.node_features[:, blocks["op_type"]])

    def test_original_not_mutated(self, gf):
        before = gf.node_features.copy()
        zero_feature_block(gf, "device")
        np.testing.assert_array_equal(gf.node_features, before)

    def test_edges_block(self, gf):
        z = zero_feature_block(gf, "edges")
        assert np.all(z.edge_features == 0.0)
        np.testing.assert_array_equal(z.node_features, gf.node_features)

    def test_unknown_block_raises(self, gf):
        with pytest.raises(KeyError):
            zero_feature_block(gf, "colour")

    def test_model_still_runs_on_ablated_features(self, gf):
        from repro.core import DNNOccu, DNNOccuConfig
        model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=0)
        for block in ("device", "flops", "edges"):
            p = model.predict(zero_feature_block(gf, block))
            assert 0.0 < p < 1.0

    def test_ablation_changes_prediction(self, gf):
        from repro.core import DNNOccu, DNNOccuConfig
        model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=0)
        base = model.predict(gf)
        ablated = model.predict(zero_feature_block(gf, "op_type"))
        assert base != ablated
