"""Tests for profiler tooling (Chrome traces, ncu-style reports) and
dataset persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import generate_dataset, load_dataset, save_dataset
from repro.gpu import A100, occupancy_report, profile_graph, to_chrome_trace
from repro.models import ModelConfig, build_model


@pytest.fixture(scope="module")
def profile():
    return profile_graph(build_model("alexnet", ModelConfig(batch_size=16)),
                         A100)


class TestChromeTrace:
    def test_valid_json(self, profile):
        trace = json.loads(to_chrome_trace(profile))
        assert trace["traceEvents"]
        assert trace["otherData"]["device"] == "A100"

    def test_one_event_pair_per_launch(self, profile):
        trace = json.loads(to_chrome_trace(profile))
        kernels = [e for e in trace["traceEvents"] if e["tid"] == 1]
        dispatches = [e for e in trace["traceEvents"] if e["tid"] == 0]
        assert len(kernels) == profile.num_kernels
        assert len(dispatches) == profile.num_kernels

    def test_events_are_ordered_and_nonoverlapping(self, profile):
        trace = json.loads(to_chrome_trace(profile))
        events = sorted(trace["traceEvents"], key=lambda e: e["ts"])
        end = 0.0
        for e in events:
            assert e["ts"] >= end - 1e-6
            end = e["ts"] + e["dur"]

    def test_total_duration_matches_wall_time(self, profile):
        trace = json.loads(to_chrome_trace(profile))
        events = trace["traceEvents"]
        total = max(e["ts"] + e["dur"] for e in events)
        assert total == pytest.approx(profile.wall_time_s * 1e6, rel=1e-6)

    def test_kernel_events_carry_occupancy(self, profile):
        trace = json.loads(to_chrome_trace(profile))
        for e in trace["traceEvents"]:
            if e["tid"] == 1:
                assert 0.0 < e["args"]["occupancy"] <= 1.0
                assert e["args"]["limiter"]


class TestOccupancyReport:
    def test_contains_header_and_rows(self, profile):
        text = occupancy_report(profile)
        assert "duration-weighted achieved occupancy" in text
        assert "limiter" in text
        # One row per record + 3 header lines.
        assert len(text.splitlines()) == len(profile.records) + 3

    def test_top_limits_rows(self, profile):
        text = occupancy_report(profile, top=2)
        assert len(text.splitlines()) == 2 + 3

    def test_rows_sorted_by_duration(self, profile):
        rows = occupancy_report(profile).splitlines()[3:]
        durations = [float(r.split()[2]) for r in rows]
        assert durations == sorted(durations, reverse=True)


class TestDatasetPersistence:
    def test_roundtrip(self, tmp_path):
        ds = generate_dataset(["lenet"], [A100], 3, seed=5)
        path = str(tmp_path / "ds.npz")
        save_dataset(ds, path)
        back = load_dataset(path)
        assert len(back) == len(ds)
        np.testing.assert_array_equal(back.labels(), ds.labels())
        for a, b in zip(ds, back):
            np.testing.assert_array_equal(a.features.node_features,
                                          b.features.node_features)
            np.testing.assert_array_equal(a.features.edge_index,
                                          b.features.edge_index)
            assert a.model_name == b.model_name
            assert a.config.batch_size == b.config.batch_size

    def test_loaded_dataset_trains(self, tmp_path):
        from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
        ds = generate_dataset(["lenet"], [A100], 3, seed=5)
        path = str(tmp_path / "ds.npz")
        save_dataset(ds, path)
        back = load_dataset(path)
        model = DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=0)
        hist = Trainer(model, TrainConfig(epochs=2, lr=1e-3)).fit(back)
        assert len(hist.train_loss) == 2

    def test_bad_version_rejected(self, tmp_path):
        import json as _json
        path = str(tmp_path / "bad.npz")
        np.savez(path, meta_json=np.array(_json.dumps(
            {"version": 99, "num_samples": 0, "samples": []})))
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)
