"""Occupancy calculator tests, including hand-worked NVIDIA-style examples."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (A100, P40, RTX2080TI, achieved_occupancy,
                       theoretical_occupancy)


class TestTheoreticalOccupancy:
    def test_full_occupancy_small_kernel(self):
        # 256 threads, 32 regs, no smem on A100: warps limit 64/8 = 8 blocks,
        # regs: 32*32=1024/warp -> 8192/block -> 8 blocks, so 64 warps: 100%.
        res = theoretical_occupancy(A100, 256, 32, 0)
        assert res.occupancy == 1.0

    def test_register_limited(self):
        # 256 threads @ 80 regs: 80*32=2560/warp, 20480/block ->
        # floor(65536/20480) = 3 blocks -> 24 warps / 64 = 37.5%.
        res = theoretical_occupancy(A100, 256, 80, 0)
        assert res.limiter == "registers"
        assert res.active_blocks_per_sm == 3
        np.testing.assert_allclose(res.occupancy, 24 / 64)

    def test_register_allocation_granularity(self):
        # 33 regs/thread rounds 1056 up to 1280 per warp.
        res33 = theoretical_occupancy(A100, 256, 33, 0)
        res40 = theoretical_occupancy(A100, 256, 40, 0)
        assert res33.active_blocks_per_sm == res40.active_blocks_per_sm

    def test_shared_memory_limited(self):
        # 33 KB/block on A100's 164 KB SM -> 4 blocks.
        res = theoretical_occupancy(A100, 128, 16, 33 * 1024)
        assert res.limiter == "shared_mem"
        assert res.active_blocks_per_sm == 4

    def test_block_slot_limited(self):
        # Tiny 32-thread blocks with no other pressure: A100 caps at 32
        # blocks -> 32 warps / 64 = 50%.
        res = theoretical_occupancy(A100, 32, 8, 0)
        assert res.limiter in ("blocks", "warps")
        assert res.active_blocks_per_sm == 32
        np.testing.assert_allclose(res.occupancy, 0.5)

    def test_turing_has_smaller_warp_budget(self):
        # Same launch config occupies Turing (max 32 warps) twice as much.
        a = theoretical_occupancy(A100, 256, 80, 0)
        t = theoretical_occupancy(RTX2080TI, 256, 80, 0)
        assert t.occupancy > a.occupancy

    def test_invalid_threads_raises(self):
        with pytest.raises(ValueError):
            theoretical_occupancy(A100, 0, 32, 0)
        with pytest.raises(ValueError):
            theoretical_occupancy(A100, 2048, 32, 0)

    def test_kernel_exceeding_register_file_raises(self):
        with pytest.raises(ValueError):
            theoretical_occupancy(A100, 1024, 255, 0)

    def test_kernel_exceeding_shared_mem_raises(self):
        with pytest.raises(ValueError):
            theoretical_occupancy(A100, 128, 16, 200 * 1024)

    @given(st.sampled_from([32, 64, 128, 256, 512, 1024]),
           st.integers(8, 64), st.sampled_from([0, 1024, 8192, 16384]))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_in_unit_interval(self, threads, regs, smem):
        for dev in (A100, RTX2080TI, P40):
            res = theoretical_occupancy(dev, threads, regs, smem)
            assert 0.0 < res.occupancy <= 1.0
            assert res.active_warps_per_sm <= dev.max_warps_per_sm


class TestAchievedOccupancy:
    def test_never_exceeds_theoretical(self):
        for grid in (1, 10, 100, 1000, 100000):
            ach, theo = achieved_occupancy(A100, grid, 256, 32, 0)
            assert ach <= theo.occupancy + 1e-12

    def test_monotone_in_grid_until_saturation(self):
        values = [achieved_occupancy(A100, g, 256, 32, 0)[0]
                  for g in (10, 100, 1000, 10000)]
        assert values == sorted(values)

    def test_tiny_grid_has_tiny_occupancy(self):
        ach, _ = achieved_occupancy(A100, 1, 256, 32, 0)
        # One 8-warp block on a 108-SM device barely registers.
        assert ach < 0.01

    def test_large_grid_approaches_theoretical(self):
        ach, theo = achieved_occupancy(A100, 10**6, 256, 32, 0)
        assert ach > 0.9 * theo.occupancy

    def test_partial_wave_tail_penalty(self):
        # Exactly one wave beats one wave + one straggler block per SM.
        _, theo = achieved_occupancy(A100, 1, 256, 32, 0)
        wave = theo.active_blocks_per_sm * A100.sm_count
        full, _ = achieved_occupancy(A100, wave, 256, 32, 0)
        ragged, _ = achieved_occupancy(A100, wave + 1, 256, 32, 0)
        assert ragged < full

    def test_zero_grid_raises(self):
        with pytest.raises(ValueError):
            achieved_occupancy(A100, 0, 256, 32, 0)

    @given(st.integers(1, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_achieved_in_unit_interval(self, grid):
        ach, _ = achieved_occupancy(P40, grid, 128, 40, 4096)
        assert 0.0 < ach <= 1.0
