"""The static-analysis subsystem: every diagnostic code must fire on a
deliberately broken fixture (exactly once), and the real repo — every zoo
model, every registry, every source file — must lint clean.
"""

from __future__ import annotations

import dataclasses
import pathlib
from collections import Counter

import numpy as np
import pytest

import repro
from repro.features import encode_graph
from repro.gpu import A100, profile_graph
from repro.graph import DataEdge, GraphBuilder, OpNode
from repro.lint import (CODE_TABLE, Diagnostic, LintError, LintReport,
                        PassManager, Severity, default_manager, lint_graph,
                        lint_paths, lint_registries, lint_zoo,
                        preflight_features, preflight_graph)
from repro.lint.registry_passes import (EncoderAttrCoveragePass,
                                        ExtraRegistrationPass,
                                        RegistryCoveragePass)


def tiny_graph():
    """input -> conv -> relu -> flatten -> linear, all shapes consistent."""
    b = GraphBuilder("tiny")
    x = b.input((2, 3, 8, 8))
    y = b.conv2d(x, 4, 3, padding=1)
    y = b.relu(y)
    y = b.flatten(y)
    b.linear(y, 10)
    return b.finish()


def codes(report: LintReport) -> Counter:
    return Counter(d.code for d in report.diagnostics)


def lint_codes(g, **kw) -> Counter:
    return codes(lint_graph(g, device=A100, **kw))


# --------------------------------------------------------------------- #
# Graph passes: each code fires exactly once on its broken fixture
# --------------------------------------------------------------------- #

def test_clean_graph_has_no_diagnostics():
    report = lint_graph(tiny_graph(), device=A100)
    assert report.clean
    assert report.ok
    assert report.exit_code() == 0


def test_g001_dangling_edge():
    g = tiny_graph()
    out = g.nodes[4].output_shape
    g.edges.append(DataEdge(src=4, dst=99, tensor_shape=out))
    c = lint_codes(g)
    assert c["G001"] == 1
    assert set(c) == {"G001"}


def test_g002_self_loop():
    g = tiny_graph()
    g.edges.append(DataEdge(src=2, dst=2,
                            tensor_shape=g.nodes[2].output_shape))
    c = lint_codes(g)
    assert c["G002"] == 1
    assert set(c) == {"G002"}


def test_g003_cycle():
    g = tiny_graph()
    g.edges.append(DataEdge(src=4, dst=1,
                            tensor_shape=g.nodes[4].output_shape))
    c = lint_codes(g)
    assert c["G003"] == 1
    assert set(c) == {"G003"}


def test_g004_unknown_op_type():
    g = tiny_graph()
    g.nodes[2].op_type = "FancyOp"
    c = lint_codes(g)
    assert c["G004"] == 1
    assert set(c) == {"G004"}


def test_g005_shape_mismatch():
    g = tiny_graph()
    g.nodes[1].output_shape = (2, 4, 9, 9)  # conv really yields (2,4,8,8)
    assert lint_codes(g)["G005"] == 1


def test_g006_edge_shape_mismatch():
    g = tiny_graph()
    g.edges[0] = dataclasses.replace(g.edges[0], tensor_shape=(2, 3, 7, 7))
    assert lint_codes(g)["G006"] == 1


def test_g007_negative_cost():
    g = tiny_graph()
    g.nodes[1].flops = -5
    c = lint_codes(g)
    assert c["G007"] == 1
    assert set(c) == {"G007"}


def test_g008_flops_overflow_is_warning():
    g = tiny_graph()
    g.nodes[1].flops = 2 ** 70
    report = lint_graph(g, device=A100)
    assert codes(report)["G008"] == 1
    assert report.ok  # warnings never gate


def test_g009_flops_drift_is_warning():
    g = tiny_graph()
    g.nodes[1].flops += 1000
    report = lint_graph(g, device=A100)
    assert codes(report)["G009"] == 1
    assert report.ok


def test_g010_schema_violation():
    g = tiny_graph()
    g.nodes[1].attrs["groups"] = 3  # does not divide out_channels=4
    assert lint_codes(g)["G010"] == 1


def test_g011_non_finite_features():
    g = tiny_graph()
    g.nodes[1].flops = float("inf")
    assert lint_codes(g)["G011"] == 1


def test_g012_orphan_node_is_warning():
    g = tiny_graph()
    shape = (2, 4, 8, 8)
    g.add_node(OpNode(node_id=99, op_type="ReLU", attrs={},
                      input_shapes=[shape], output_shape=shape,
                      flops=2 * 4 * 8 * 8))
    report = lint_graph(g, device=A100)
    c = codes(report)
    assert c["G012"] == 1
    assert set(c) == {"G012"}
    assert report.ok


# --------------------------------------------------------------------- #
# Cross-registry coverage passes (doctored registries injected)
# --------------------------------------------------------------------- #

def _run(lint_pass) -> Counter:
    return codes(PassManager([lint_pass]).run_registries())


def test_r001_missing_builder_emitter():
    from repro.graph.builder import builder_emitted_ops
    c = _run(RegistryCoveragePass(
        builder_ops=builder_emitted_ops() - {"Conv2d"}))
    assert c["R001"] == 1
    assert set(c) == {"R001"}


def test_r002_missing_flops_rule():
    from repro.graph.flops import flops_rule_ops
    c = _run(RegistryCoveragePass(flops_ops=flops_rule_ops() - {"Gemm"}))
    assert c["R002"] == 1
    assert set(c) == {"R002"}


def test_r003_missing_lowering():
    from repro.gpu.kernels import LOWERABLE_OPS
    c = _run(RegistryCoveragePass(lowerable_ops=LOWERABLE_OPS - {"LSTM"}))
    assert c["R003"] == 1
    assert set(c) == {"R003"}


def test_r004_missing_encoder_slot():
    from repro.graph import op_type_index

    def index(op: str) -> int:
        if op == "ReLU":
            raise KeyError(op)
        return op_type_index(op)

    c = _run(RegistryCoveragePass(encoder_index=index))
    assert c["R004"] == 1
    assert set(c) == {"R004"}


def test_r005_extra_registration_is_warning():
    from repro.graph.builder import builder_emitted_ops
    report = PassManager([ExtraRegistrationPass(
        builder_ops=builder_emitted_ops() | {"GhostOp"})]).run_registries()
    assert codes(report)["R005"] == 1
    assert report.ok


def test_r006_unencoded_schema_attr_is_warning():
    report = PassManager([EncoderAttrCoveragePass(
        schema_attrs={"Conv2d": frozenset({"mystery_attr"})},
    )]).run_registries()
    assert codes(report)["R006"] == 1
    assert report.ok


# --------------------------------------------------------------------- #
# AST source passes (temp files)
# --------------------------------------------------------------------- #

def _lint_source(tmp_path, text: str, name: str = "mod.py") -> Counter:
    f = tmp_path / name
    f.write_text(text)
    return codes(lint_paths([str(f)]))


def test_s000_syntax_error(tmp_path):
    c = _lint_source(tmp_path, "def broken(:\n")
    assert c["S000"] == 1
    assert set(c) == {"S000"}


def test_s001_bare_except(tmp_path):
    c = _lint_source(tmp_path,
                     "__all__ = []\n"
                     "try:\n    pass\nexcept:\n    pass\n")
    assert c["S001"] == 1
    assert set(c) == {"S001"}


def test_s002_float_equality_on_occupancy(tmp_path):
    c = _lint_source(tmp_path,
                     "__all__ = []\n"
                     "def f(prof):\n"
                     "    return prof.occupancy == 0.5\n")
    assert c["S002"] == 1
    assert set(c) == {"S002"}


def test_s003_missing_dunder_all(tmp_path):
    c = _lint_source(tmp_path, "x = 1\n")
    assert c["S003"] == 1
    assert set(c) == {"S003"}


def test_s003_main_modules_exempt(tmp_path):
    assert not _lint_source(tmp_path, "print('hi')\n", name="__main__.py")


def test_s004_raw_sleep(tmp_path):
    c = _lint_source(tmp_path,
                     "__all__ = []\n"
                     "import time\n"
                     "from time import sleep\n"
                     "def retry():\n"
                     "    time.sleep(1.0)\n"
                     "    sleep(2)\n")
    assert c["S004"] == 2
    assert set(c) == {"S004"}


def test_s004_backoff_module_exempt(tmp_path):
    (tmp_path / "resilience").mkdir()
    f = tmp_path / "resilience" / "backoff.py"
    f.write_text("__all__ = []\nimport time\ntime.sleep(0.0)\n")
    assert not codes(lint_paths([str(f)]))


def test_s004_ignores_other_attributes(tmp_path):
    c = _lint_source(tmp_path,
                     "__all__ = []\n"
                     "def f(event):\n"
                     "    event.sleep = 3\n"
                     "    return event.wait()\n")
    assert not c


_S005_LOOPS = (
    "__all__ = []\n"
    "def fit(train: Dataset, val):\n"
    "    for s in train:\n"
    "        s.features\n"
    "    for i in range(len(train)):\n"
    "        train[i]\n"
    "    for s in train.samples:\n"
    "        s.occupancy\n"
    "    [train[i] for i in order]\n"
)


def _lint_core_source(tmp_path, text: str) -> Counter:
    (tmp_path / "core").mkdir(exist_ok=True)
    f = tmp_path / "core" / "mod.py"
    f.write_text(text)
    return codes(lint_paths([str(f)]))


def test_s005_per_sample_loops_in_core(tmp_path):
    c = _lint_core_source(tmp_path, _S005_LOOPS)
    assert c["S005"] == 4
    assert set(c) == {"S005"}


def test_s005_outside_core_exempt(tmp_path):
    assert not _lint_source(tmp_path, _S005_LOOPS)


def test_s005_opt_out_comment(tmp_path):
    c = _lint_core_source(tmp_path,
                          "__all__ = []\n"
                          "def fit(train: Dataset):\n"
                          "    # perf: per-sample-ok -- reference path\n"
                          "    for s in train:\n"
                          "        s.features\n")
    assert not c


def test_s005_ignores_plain_loops(tmp_path):
    c = _lint_core_source(tmp_path,
                          "__all__ = []\n"
                          "def fit(xs, train: Dataset):\n"
                          "    for x in xs:\n"
                          "        x + 1\n"
                          "    for e in edges:\n"
                          "        e.src\n")
    assert not c


_S006_DIRECT_PREDICT = (
    "__all__ = []\n"
    "def plan(model, feats):\n"
    "    return model.predict(feats)\n"
)


def _lint_sched_source(tmp_path, text: str) -> Counter:
    (tmp_path / "sched").mkdir(exist_ok=True)
    f = tmp_path / "sched" / "mod.py"
    f.write_text(text)
    return codes(lint_paths([str(f)]))


def test_s006_direct_predict_in_sched(tmp_path):
    c = _lint_sched_source(tmp_path, _S006_DIRECT_PREDICT)
    assert c["S006"] == 1
    assert set(c) == {"S006"}


def test_s006_predict_batch_in_colocation(tmp_path):
    (tmp_path / "gpu").mkdir()
    f = tmp_path / "gpu" / "colocation.py"
    f.write_text("__all__ = []\n"
                 "def pack(model, feats):\n"
                 "    return model.predict_batch(feats)\n")
    c = codes(lint_paths([str(f)]))
    assert c["S006"] == 1
    assert set(c) == {"S006"}


def test_s006_outside_online_path_exempt(tmp_path):
    assert not _lint_source(tmp_path, _S006_DIRECT_PREDICT)


def test_s006_service_receiver_is_sanctioned(tmp_path):
    c = _lint_sched_source(tmp_path,
                           "__all__ = []\n"
                           "def plan(service, graphs, svc):\n"
                           "    service.predict(graphs[0])\n"
                           "    self.service.predict(graphs[1])\n"
                           "    predictor_service.predict_batch(graphs)\n")
    assert not c


def test_s006_opt_out_comment(tmp_path):
    c = _lint_sched_source(
        tmp_path,
        "__all__ = []\n"
        "def oracle(model, feats):\n"
        "    # serve: direct-predict-ok -- equivalence oracle\n"
        "    return model.predict(feats)\n")
    assert not c


def test_s007_undeclared_metric_name(tmp_path):
    c = _lint_source(tmp_path,
                     "__all__ = []\n"
                     "from repro.obs import counter\n"
                     "def f():\n"
                     "    counter('made_up_total').inc()\n")
    assert c["S007"] == 1
    assert set(c) == {"S007"}


def test_s007_declared_names_clean(tmp_path):
    assert not _lint_source(
        tmp_path,
        "__all__ = []\n"
        "from repro.obs import counter, histogram\n"
        "def f(reg):\n"
        "    counter('serve_requests_total').inc()\n"
        "    reg.histogram('serve_latency_seconds')\n")


def test_s007_constructor_form_flagged(tmp_path):
    c = _lint_source(tmp_path,
                     "__all__ = []\n"
                     "from repro.obs.metrics import Histogram\n"
                     "h = Histogram('bespoke_latency_seconds', (0.1,))\n")
    assert c["S007"] == 1


def test_s007_opt_out_comment(tmp_path):
    assert not _lint_source(
        tmp_path,
        "__all__ = []\n"
        "from repro.obs import gauge\n"
        "def f():\n"
        "    # obs: adhoc-metric-ok -- scratch experiment\n"
        "    gauge('scratch_value').set(1.0)\n")


def test_s007_dynamic_name_out_of_scope(tmp_path):
    assert not _lint_source(
        tmp_path,
        "__all__ = []\n"
        "from repro.obs import counter\n"
        "def f(name):\n"
        "    counter(name).inc()\n")


def test_s007_names_module_exempt(tmp_path):
    (tmp_path / "obs").mkdir()
    f = tmp_path / "obs" / "names.py"
    f.write_text("__all__ = []\n"
                 "from repro.obs import counter\n"
                 "counter('anything_goes_here_total')\n")
    assert not codes(lint_paths([str(f)]))


def test_directory_lint_recurses(tmp_path):
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "a.py").write_text("x = 1\n")
    (tmp_path / "b.py").write_text("__all__ = []\n")
    report = lint_paths([str(tmp_path)])
    assert report.targets_checked == 2
    assert codes(report)["S003"] == 1


# --------------------------------------------------------------------- #
# Pre-flight gates (profiler and trainer hooks)
# --------------------------------------------------------------------- #

def test_preflight_graph_raises_on_error():
    g = tiny_graph()
    g.edges.append(DataEdge(src=4, dst=99,
                            tensor_shape=g.nodes[4].output_shape))
    with pytest.raises(LintError) as exc:
        preflight_graph(g)
    assert any(d.code == "G001" for d in exc.value.diagnostics)


def test_preflight_graph_passes_warnings_through():
    g = tiny_graph()
    g.nodes[1].flops += 1000  # G009, a warning
    report = preflight_graph(g)
    assert report.ok and not report.clean


def test_profiler_gate_rejects_broken_graph():
    g = tiny_graph()
    g.nodes[1].flops = -5
    with pytest.raises(LintError):
        profile_graph(g, A100)
    # opt-out must restore the old behavior
    assert profile_graph(g, A100, preflight=False).num_kernels > 0


def test_f001_non_finite_feature_matrix():
    feats = encode_graph(tiny_graph(), A100)
    feats.node_features[0, 0] = np.nan
    with pytest.raises(LintError) as exc:
        preflight_features(feats, label=0.5)
    assert [d.code for d in exc.value.diagnostics] == ["F001"]


def test_f002_label_outside_unit_interval():
    feats = encode_graph(tiny_graph(), A100)
    for bad in (1.5, -0.1, float("nan")):
        with pytest.raises(LintError) as exc:
            preflight_features(feats, label=bad)
        assert [d.code for d in exc.value.diagnostics] == ["F002"]
    preflight_features(feats, label=0.0)  # boundary values are legal
    preflight_features(feats, label=1.0)


def test_trainer_gate_rejects_poisoned_label(tiny_dataset):
    from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
    ds = dataclasses.replace(
        tiny_dataset, samples=list(tiny_dataset.samples))
    ds.samples[0] = dataclasses.replace(ds.samples[0], occupancy=1.5)
    model = DNNOccu(DNNOccuConfig(hidden=8, num_heads=2), seed=0)
    with pytest.raises(LintError):
        Trainer(model, TrainConfig(epochs=1)).fit(ds)
    # the gate is opt-out
    Trainer(model, TrainConfig(epochs=1, preflight=False)).fit(ds)


# --------------------------------------------------------------------- #
# The real repo must be clean
# --------------------------------------------------------------------- #

def test_zoo_lints_clean():
    report = lint_zoo(device=A100)
    assert report.clean, report.format_text()
    from repro.models import list_models
    assert report.targets_checked == len(list_models())


def test_registries_lint_clean():
    report = lint_registries()
    assert report.clean, report.format_text()


def test_source_tree_lints_clean():
    root = pathlib.Path(repro.__file__).parent
    report = lint_paths([str(root)])
    assert report.targets_checked >= 50
    assert report.clean, report.format_text()


def test_fused_graph_passes_preflight():
    from repro.gpu import fuse_elementwise
    from repro.models import build_model
    fused = fuse_elementwise(build_model("resnet-18"))
    report = preflight_graph(fused)
    assert report.ok  # fusion may drift FLOPs (G009) but never errors


# --------------------------------------------------------------------- #
# Diagnostic / report plumbing
# --------------------------------------------------------------------- #

def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic(code="Z999", severity=Severity.ERROR, message="nope")


def test_report_json_roundtrip():
    g = tiny_graph()
    g.nodes[1].flops = -5
    report = lint_graph(g, device=A100)
    doc = report.to_dict()
    assert doc["tool"]["name"] == "repro-lint"
    assert doc["summary"]["error"] == 1
    assert doc["diagnostics"][0]["code"] == "G007"
    assert report.exit_code() == 1


def test_severity_labels_roundtrip():
    for sev in Severity:
        assert Severity.from_label(sev.label) is sev
    with pytest.raises(ValueError):
        Severity.from_label("fatal")


def test_every_code_is_documented_in_docs():
    doc = pathlib.Path(__file__).resolve().parent.parent \
        / "docs" / "static_analysis.md"
    text = doc.read_text()
    for code in CODE_TABLE:
        assert code in text, f"{code} missing from docs/static_analysis.md"


def test_pass_metadata_covers_code_table():
    """Every documented G/R/S code is claimed by a registered pass."""
    claimed = {c for p in default_manager().passes for c in p.codes}
    claimed |= {"S000"}   # emitted by the manager itself on parse errors
    claimed |= {"F001", "F002"}  # emitted by preflight_features
    assert claimed == set(CODE_TABLE)


def test_duplicate_pass_registration_rejected():
    from repro.lint.graph_passes import StructuralPass
    mgr = PassManager([StructuralPass()])
    with pytest.raises(ValueError):
        mgr.register(StructuralPass())
