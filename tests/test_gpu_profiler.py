"""Profiler tests: aggregation, NVML simulation, OOM, memory estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import (A100, P40, RTX2080TI, DeviceSpec, OutOfMemoryError,
                       estimate_memory_bytes, get_device, profile_graph)
from repro.models import ModelConfig, build_model


@pytest.fixture(scope="module")
def resnet18_profile():
    g = build_model("resnet-18", ModelConfig(batch_size=32))
    return profile_graph(g, A100)


class TestDeviceRegistry:
    def test_lookup_case_insensitive(self):
        assert get_device("a100") is A100
        assert get_device("rtx2080ti") is RTX2080TI

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device("H100")

    def test_derived_properties(self):
        assert A100.max_threads_per_sm == 2048
        assert A100.peak_flops == pytest.approx(19.5e12)
        assert P40.mem_capacity_bytes == int(22.5 * 2**30)


class TestProfileResult:
    def test_records_nonempty(self, resnet18_profile):
        assert resnet18_profile.num_kernels > 0
        assert len(resnet18_profile.records) > 0

    def test_occupancy_in_unit_interval(self, resnet18_profile):
        assert 0.0 < resnet18_profile.occupancy < 1.0
        for rec in resnet18_profile.records:
            assert 0.0 < rec.occupancy <= 1.0
            assert rec.occupancy <= rec.theoretical_occupancy + 1e-12

    def test_nvml_in_unit_interval(self, resnet18_profile):
        assert 0.0 < resnet18_profile.nvml_utilization <= 1.0

    def test_nvml_exceeds_occupancy_for_dl_models(self, resnet18_profile):
        # The Fig. 2 phenomenon: NVML is a loose upper bound.
        assert resnet18_profile.nvml_utilization > resnet18_profile.occupancy

    def test_wall_time_exceeds_busy_time(self, resnet18_profile):
        assert resnet18_profile.wall_time_s > resnet18_profile.busy_time_s > 0

    def test_durations_positive(self, resnet18_profile):
        assert all(r.duration_s > 0 for r in resnet18_profile.records)

    def test_aggregations(self, resnet18_profile):
        p = resnet18_profile
        lo = p.aggregate_occupancy("min")
        mid = p.aggregate_occupancy("mean")
        hi = p.aggregate_occupancy("max")
        assert lo <= mid <= hi
        assert p.aggregate_occupancy("unweighted_mean") <= hi

    def test_unknown_aggregation_raises(self, resnet18_profile):
        with pytest.raises(ValueError):
            resnet18_profile.aggregate_occupancy("median")

    def test_weighted_mean_definition(self, resnet18_profile):
        recs = resnet18_profile.records
        w = np.array([r.duration_s for r in recs])
        o = np.array([r.occupancy for r in recs])
        np.testing.assert_allclose(resnet18_profile.occupancy,
                                   float((w * o).sum() / w.sum()))


class TestBatchSizeEffects:
    def test_occupancy_rises_with_batch(self):
        occ = []
        for bs in (4, 32, 128):
            g = build_model("resnet-50", ModelConfig(batch_size=bs))
            occ.append(profile_graph(g, A100, check_memory=False).occupancy)
        assert occ[0] < occ[1] < occ[2]

    def test_nvml_saturates_before_occupancy(self):
        g = build_model("resnet-50", ModelConfig(batch_size=128))
        p = profile_graph(g, A100, check_memory=False)
        assert p.nvml_utilization > 0.9
        assert p.occupancy < 0.6


class TestDeviceEffects:
    def test_same_graph_differs_across_devices(self):
        g = build_model("vgg-11", ModelConfig(batch_size=32))
        occ = {d.name: profile_graph(g, d, check_memory=False).occupancy
               for d in (A100, RTX2080TI, P40)}
        assert len(set(round(v, 6) for v in occ.values())) == 3

    def test_slower_device_longer_wall_time(self):
        g = build_model("vgg-11", ModelConfig(batch_size=32))
        a = profile_graph(g, A100, check_memory=False).wall_time_s
        p = profile_graph(g, P40, check_memory=False).wall_time_s
        assert p > a


class TestMemory:
    def test_estimate_monotone_in_batch(self):
        small = estimate_memory_bytes(
            build_model("vgg-16", ModelConfig(batch_size=16)))
        big = estimate_memory_bytes(
            build_model("vgg-16", ModelConfig(batch_size=128)))
        assert big > small

    def test_oom_raised_on_small_device(self):
        tiny = DeviceSpec(
            name="TinyGPU", arch="Test", sm_count=4, max_warps_per_sm=32,
            max_blocks_per_sm=16, registers_per_sm=65536,
            register_alloc_unit=256, shared_mem_per_sm=64 * 1024,
            shared_mem_alloc_unit=128, fp32_tflops=1.0,
            mem_bandwidth_gbs=100.0, mem_capacity_gb=1.0)
        g = build_model("vgg-16", ModelConfig(batch_size=128))
        with pytest.raises(OutOfMemoryError):
            profile_graph(g, tiny)

    def test_check_memory_flag_skips_oom(self):
        tiny = DeviceSpec(
            name="TinyGPU", arch="Test", sm_count=4, max_warps_per_sm=32,
            max_blocks_per_sm=16, registers_per_sm=65536,
            register_alloc_unit=256, shared_mem_per_sm=64 * 1024,
            shared_mem_alloc_unit=128, fp32_tflops=1.0,
            mem_bandwidth_gbs=100.0, mem_capacity_gb=1.0)
        g = build_model("vgg-16", ModelConfig(batch_size=128))
        assert profile_graph(g, tiny, check_memory=False).occupancy > 0


class TestPerNodeOccupancy:
    def test_durations_sum_to_busy_time(self, resnet18_profile):
        per_node = resnet18_profile.per_node_occupancy()
        total = sum(v["duration_s"] for v in per_node.values())
        assert total == pytest.approx(resnet18_profile.busy_time_s)

    def test_weighted_recombination_matches_label(self, resnet18_profile):
        per_node = resnet18_profile.per_node_occupancy()
        dur = np.array([v["duration_s"] for v in per_node.values()])
        occ = np.array([v["occupancy"] for v in per_node.values()])
        np.testing.assert_allclose(float((dur * occ).sum() / dur.sum()),
                                   resnet18_profile.occupancy)

    def test_view_nodes_absent(self, resnet18_profile):
        # The input node (id 0) launches no kernels.
        assert 0 not in resnet18_profile.per_node_occupancy()


class TestPerKernelBreakdown:
    def test_shares_sum_to_one(self, resnet18_profile):
        shares = [v["duration_share"] for v in
                  resnet18_profile.per_kernel_breakdown().values()]
        assert sum(shares) == pytest.approx(1.0)

    def test_sorted_by_share(self, resnet18_profile):
        shares = [v["duration_share"] for v in
                  resnet18_profile.per_kernel_breakdown().values()]
        assert shares == sorted(shares, reverse=True)

    def test_occupancies_valid(self, resnet18_profile):
        for v in resnet18_profile.per_kernel_breakdown().values():
            assert 0.0 < v["occupancy"] <= 1.0
            assert v["launches"] >= 1

    def test_gemm_family_dominates_resnet(self, resnet18_profile):
        top = next(iter(resnet18_profile.per_kernel_breakdown()))
        assert "conv" in top or "gemm" in top


class TestDeterminism:
    def test_profile_is_deterministic(self):
        g = build_model("alexnet", ModelConfig(batch_size=24))
        a = profile_graph(g, A100).occupancy
        b = profile_graph(g, A100).occupancy
        assert a == b
