"""Documentation consistency checks: docs reference real files and APIs."""

from __future__ import annotations

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


class TestDocsExist:
    def test_required_documents_present(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/architecture.md", "docs/api.md"):
            assert (ROOT / name).is_file(), name

    def test_readme_mentions_all_examples(self):
        readme = (ROOT / "README.md").read_text()
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in readme, \
                f"README does not mention examples/{example.name}"

    def test_readme_benchmark_table_matches_files(self):
        readme = (ROOT / "README.md").read_text()
        for ref in re.findall(r"`(test_\w+\.py)`", readme):
            assert (ROOT / "benchmarks" / ref).is_file(), ref

    def test_design_lists_every_subpackage(self):
        design = (ROOT / "DESIGN.md").read_text()
        pkg = ROOT / "src" / "repro"
        for sub in pkg.iterdir():
            if sub.is_dir() and (sub / "__init__.py").exists():
                assert sub.name in design, \
                    f"DESIGN.md does not mention repro.{sub.name}"


class TestApiDocImports:
    def test_documented_imports_resolve(self):
        """Every `from repro.x import a, b` line in docs/api.md works."""
        text = (ROOT / "docs" / "api.md").read_text()
        pattern = re.compile(
            r"^from (repro[\w.]*) import \(?([\w, \n]+?)\)?$", re.M)
        checked = 0
        for module, names in pattern.findall(text):
            mod = __import__(module, fromlist=["_"])
            for name in re.split(r"[,\s]+", names.strip()):
                if name:
                    assert hasattr(mod, name), f"{module}.{name}"
                    checked += 1
        assert checked > 20  # the doc actually exercises the API


class TestBenchmarkResultsNamedInExperiments:
    def test_experiments_references_results_dir(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "results/" in text
