"""Feature-engineering tests (Table I encodings)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import (edge_feature_dim, encode_edge, encode_graph,
                            encode_node, node_feature_dim)
from repro.graph import DataEdge, GraphBuilder, OP_TYPES, OpNode, \
    op_type_index
from repro.gpu import A100, P40, RTX2080TI
from repro.models import ModelConfig, build_model


@pytest.fixture(scope="module")
def small_graph():
    b = GraphBuilder("g")
    x = b.input((4, 3, 32, 32))
    y = b.conv2d(x, 8, 3, padding=1)
    y = b.relu(y)
    y = b.global_avgpool(y)
    y = b.flatten(y)
    b.linear(y, 10)
    return b.finish()


class TestNodeEncoding:
    def test_vector_length_matches_declared_dim(self, small_graph):
        for node in small_graph.nodes.values():
            assert encode_node(node, A100).shape == (node_feature_dim(),)

    def test_one_hot_is_exclusive(self, small_graph):
        for node in small_graph.nodes.values():
            onehot = encode_node(node, A100)[:len(OP_TYPES)]
            assert onehot.sum() == 1.0
            assert onehot[op_type_index(node.op_type)] == 1.0

    def test_features_bounded(self, small_graph):
        for node in small_graph.nodes.values():
            vec = encode_node(node, A100)
            assert np.all(np.isfinite(vec))
            assert np.all(np.abs(vec) < 3.0)

    def test_device_features_differ(self, small_graph):
        node = small_graph.nodes[1]
        a = encode_node(node, A100)
        p = encode_node(node, P40)
        assert not np.allclose(a, p)
        # Only the device tail should differ.
        assert np.allclose(a[:-5], p[:-5])

    def test_hyperparams_reflected(self):
        n1 = OpNode(0, "Conv2d",
                    attrs={"in_channels": 3, "out_channels": 8,
                           "kernel_size": (3, 3), "stride": (1, 1),
                           "padding": (1, 1), "groups": 1},
                    input_shapes=[(1, 3, 8, 8)], output_shape=(1, 8, 8, 8))
        n2 = OpNode(0, "Conv2d",
                    attrs={"in_channels": 3, "out_channels": 64,
                           "kernel_size": (7, 7), "stride": (2, 2),
                           "padding": (3, 3), "groups": 1},
                    input_shapes=[(1, 3, 8, 8)], output_shape=(1, 64, 1, 1))
        assert not np.allclose(encode_node(n1, A100), encode_node(n2, A100))

    def test_encoding_deterministic(self, small_graph):
        node = small_graph.nodes[1]
        np.testing.assert_array_equal(encode_node(node, A100),
                                      encode_node(node, A100))


class TestEdgeEncoding:
    def test_vector_length(self):
        e = DataEdge(src=0, dst=1, tensor_shape=(4, 4))
        assert encode_edge(e, A100).shape == (edge_feature_dim(),)

    def test_edge_type_one_hot(self):
        fwd = encode_edge(DataEdge(0, 1, (4,), "forward"), A100)
        bwd = encode_edge(DataEdge(0, 1, (4,), "backward"), A100)
        assert fwd[0] == 1.0 and fwd[1] == 0.0
        assert bwd[0] == 0.0 and bwd[1] == 1.0

    def test_tensor_size_monotone(self):
        small = encode_edge(DataEdge(0, 1, (4,)), A100)[2]
        big = encode_edge(DataEdge(0, 1, (4096, 4096)), A100)[2]
        assert big > small

    def test_bandwidth_feature_device_dependent(self):
        e = DataEdge(0, 1, (4,))
        assert encode_edge(e, A100)[3] > encode_edge(e, P40)[3]


class TestGraphEncoding:
    def test_shapes(self, small_graph):
        gf = encode_graph(small_graph, A100)
        assert gf.node_features.shape == (small_graph.num_nodes,
                                          node_feature_dim())
        assert gf.edge_features.shape == (small_graph.num_edges,
                                          edge_feature_dim())
        assert gf.edge_index.shape == (2, small_graph.num_edges)

    def test_edge_index_in_range(self, small_graph):
        gf = encode_graph(small_graph, A100)
        assert gf.edge_index.min() >= 0
        assert gf.edge_index.max() < gf.num_nodes

    def test_metadata(self, small_graph):
        gf = encode_graph(small_graph, RTX2080TI)
        assert gf.model_name == "g"
        assert gf.device_name == "RTX2080Ti"

    def test_full_zoo_model_encodes(self):
        g = build_model("vit-t", ModelConfig(batch_size=8))
        gf = encode_graph(g, A100)
        assert gf.num_nodes == g.num_nodes
        assert np.all(np.isfinite(gf.node_features))

    def test_different_configs_give_different_features(self):
        a = encode_graph(build_model("lenet", ModelConfig(batch_size=16)),
                         A100)
        b = encode_graph(build_model("lenet", ModelConfig(batch_size=64)),
                         A100)
        assert not np.allclose(a.node_features, b.node_features)
