"""Additional property-based tests for the occupancy calculator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import A100, P40, RTX2080TI, theoretical_occupancy

DEVICES = (A100, RTX2080TI, P40)


class TestMonotonicity:
    @given(st.sampled_from(DEVICES), st.sampled_from([64, 128, 256, 512]),
           st.integers(16, 120))
    @settings(max_examples=60, deadline=None)
    def test_more_registers_never_raise_occupancy(self, dev, threads, regs):
        lo = theoretical_occupancy(dev, threads, regs, 0)
        hi = theoretical_occupancy(dev, threads, regs + 8, 0)
        assert hi.occupancy <= lo.occupancy + 1e-12

    @given(st.sampled_from(DEVICES), st.sampled_from([64, 128, 256]),
           st.sampled_from([1024, 4096, 8192, 16384]))
    @settings(max_examples=60, deadline=None)
    def test_more_shared_mem_never_raises_occupancy(self, dev, threads,
                                                    smem):
        lo = theoretical_occupancy(dev, threads, 32, smem)
        hi = theoretical_occupancy(dev, threads, 32, smem + 4096)
        assert hi.occupancy <= lo.occupancy + 1e-12

    @given(st.sampled_from(DEVICES), st.integers(8, 64))
    @settings(max_examples=40, deadline=None)
    def test_warp_count_divides_budget(self, dev, regs):
        res = theoretical_occupancy(dev, 256, regs, 0)
        # 256-thread blocks hold 8 warps; residency is block-granular.
        assert res.active_warps_per_sm % 8 == 0

    @given(st.sampled_from(DEVICES))
    @settings(max_examples=10, deadline=None)
    def test_minimal_kernel_fully_occupies(self, dev):
        res = theoretical_occupancy(dev, 256, 16, 0)
        assert res.occupancy == 1.0

    @given(st.sampled_from(DEVICES), st.sampled_from([32, 64, 128, 256]))
    @settings(max_examples=40, deadline=None)
    def test_limiter_is_reported_resource(self, dev, threads):
        res = theoretical_occupancy(dev, threads, 64, 8192)
        assert res.limiter in ("warps", "blocks", "registers",
                               "shared_mem")
