"""Kernel-lowering tests: tile selection, per-operator lowering rules."""

from __future__ import annotations

import math

import pytest

from repro.graph import GraphBuilder
from repro.gpu import A100, P40, RTX2080TI, GemmShape, lower_node
from repro.gpu.kernels import _select_gemm_tile


def build_single(fn):
    """Build a one-op graph via ``fn(builder, input_ref)`` and return the
    op node."""
    b = GraphBuilder("single")
    x = b.input((8, 16, 32, 32))
    ref = fn(b, x)
    return b.graph.nodes[ref.node_id]


class TestGemmTileSelection:
    def test_large_problem_gets_large_tile(self):
        tm, tn, *_ = _select_gemm_tile(GemmShape(m=4096, n=4096, k=512))
        assert (tm, tn) == (128, 128)

    def test_small_problem_gets_small_tile(self):
        tm, tn, *_ = _select_gemm_tile(GemmShape(m=16, n=16, k=512))
        assert (tm, tn) == (32, 32)

    def test_narrow_problem_avoids_wide_tile(self):
        tm, tn, *_ = _select_gemm_tile(GemmShape(m=4096, n=48, k=64))
        assert tn <= 64


class TestConvLowering:
    def test_implicit_gemm_for_strided_conv(self):
        node = build_single(lambda b, x: b.conv2d(x, 32, 5, stride=2,
                                                  padding=2))
        kernels = lower_node(node, A100)
        assert len(kernels) == 1
        assert "implicit_gemm" in kernels[0].name

    def test_winograd_for_3x3_stride1(self):
        node = build_single(lambda b, x: b.conv2d(x, 32, 3, padding=1))
        kernels = lower_node(node, A100)
        assert "winograd" in kernels[0].name

    def test_depthwise_is_elementwise_style(self):
        node = build_single(lambda b, x: b.conv2d(x, 16, 3, padding=1,
                                                  groups=16))
        kernels = lower_node(node, A100)
        assert kernels[0].smem_per_block == 0

    def test_conv_grid_scales_with_batch(self):
        small = build_single(lambda b, x: b.conv2d(x, 32, 5, stride=2,
                                                   padding=2))
        b2 = GraphBuilder("big")
        x2 = b2.input((64, 16, 32, 32))
        ref = b2.conv2d(x2, 32, 5, stride=2, padding=2)
        big = b2.graph.nodes[ref.node_id]
        g_small = lower_node(small, A100)[0].grid_blocks
        g_big = lower_node(big, A100)[0].grid_blocks
        assert g_big > g_small


class TestOtherOps:
    def test_input_lowered_to_nothing(self):
        b = GraphBuilder("g")
        x = b.input((1, 3, 8, 8))
        assert lower_node(b.graph.nodes[x.node_id], A100) == []

    def test_reshape_is_free(self):
        node = build_single(lambda b, x: b.reshape(x, (8, 16 * 32 * 32)))
        assert lower_node(node, A100) == []

    def test_transpose_copies(self):
        node = build_single(lambda b, x: b.transpose(x, (0, 2, 3, 1)))
        kernels = lower_node(node, A100)
        assert len(kernels) == 1 and kernels[0].flops == 0

    def test_elementwise_grid_size(self):
        node = build_single(lambda b, x: b.relu(x))
        kern = lower_node(node, A100)[0]
        numel = 8 * 16 * 32 * 32
        assert kern.grid_blocks == math.ceil(numel / (128 * 4))

    def test_softmax_one_block_per_row(self):
        b = GraphBuilder("g")
        x = b.input((4, 10, 50))
        ref = b.softmax(x)
        kern = lower_node(b.graph.nodes[ref.node_id], A100)[0]
        assert kern.grid_blocks == 40
        assert kern.smem_per_block > 0

    def test_softmax_threads_power_of_two(self):
        b = GraphBuilder("g")
        x = b.input((2, 100))
        kern = lower_node(b.graph.nodes[b.softmax(x).node_id], A100)[0]
        assert kern.threads_per_block & (kern.threads_per_block - 1) == 0

    def test_lstm_emits_gemm_and_pointwise_with_step_count(self):
        b = GraphBuilder("g")
        x = b.input((32, 20, 64))
        ref = b.lstm(x, 128, num_layers=2)
        kernels = lower_node(b.graph.nodes[ref.node_id], A100)
        assert len(kernels) == 2
        assert all(k.count == 20 * 2 for k in kernels)

    def test_unknown_op_raises(self):
        node = build_single(lambda b, x: b.relu(x))
        node.op_type = "Quantum"
        with pytest.raises(KeyError):
            lower_node(node, A100)


class TestKernelDetails:
    def test_deep_reduction_spills_registers(self):
        from repro.gpu.kernels import _lower_gemm
        shallow = _lower_gemm("g", GemmShape(m=256, n=256, k=256), 0.0, 0.0)
        deep = _lower_gemm("g", GemmShape(m=256, n=256, k=4096), 0.0, 0.0)
        assert deep.regs_per_thread > shallow.regs_per_thread

    def test_row_reduce_threads_capped_at_1024(self):
        b = GraphBuilder("g")
        x = b.input((2, 8192))
        kern = lower_node(b.graph.nodes[b.softmax(x).node_id], A100)[0]
        assert kern.threads_per_block == 1024

    def test_row_reduce_threads_floor_64(self):
        b = GraphBuilder("g")
        x = b.input((2, 4))
        kern = lower_node(b.graph.nodes[b.softmax(x).node_id], A100)[0]
        assert kern.threads_per_block >= 64

    def test_gemm_flops_match_graph_node(self):
        b = GraphBuilder("g")
        x = b.input((64, 128))
        ref = b.linear(x, 256)
        node = b.graph.nodes[ref.node_id]
        kern = lower_node(node, A100)[0]
        assert kern.flops == node.flops

    def test_batched_matmul_grid_scales_with_batch(self):
        def grid(batch):
            b = GraphBuilder("g")
            p = b.input((batch, 64, 64))
            q = b.input((batch, 64, 64))
            ref = b.matmul(p, q)
            return lower_node(b.graph.nodes[ref.node_id], A100)[0].grid_blocks
        assert grid(8) == 2 * grid(4)

    def test_rnn_single_gate_vs_lstm_four(self):
        b = GraphBuilder("g")
        x1 = b.input((32, 10, 64))
        lstm = lower_node(b.graph.nodes[b.lstm(x1, 64).node_id], A100)
        x2 = b.input((32, 10, 64))
        rnn = lower_node(b.graph.nodes[b.rnn(x2, 64).node_id], A100)
        assert lstm[0].flops > 3 * rnn[0].flops


class TestDeviceDependence:
    def test_big_tile_demoted_on_small_smem_device(self):
        # The 33 KB tile cannot double-buffer on Turing's 64 KB SM.
        b = GraphBuilder("g")
        x = b.input((512, 512))
        ref = b.linear(x, 512)
        node = b.graph.nodes[ref.node_id]
        on_a100 = lower_node(node, A100)[0]
        on_turing = lower_node(node, RTX2080TI)[0]
        assert on_a100.smem_per_block > on_turing.smem_per_block

    def test_launch_configs_valid_on_all_devices(self):
        from repro.gpu import achieved_occupancy
        b = GraphBuilder("g")
        x = b.input((64, 3, 64, 64))
        y = b.conv2d(x, 32, 3, padding=1)
        y = b.relu(y)
        y = b.global_avgpool(y)
        y = b.flatten(y)
        y = b.linear(y, 100)
        for dev in (A100, RTX2080TI, P40):
            for nid in b.graph.topological_order():
                for kern in lower_node(b.graph.nodes[nid], dev):
                    ach, _ = achieved_occupancy(
                        dev, kern.grid_blocks, kern.threads_per_block,
                        kern.regs_per_thread, kern.smem_per_block)
                    assert 0.0 < ach <= 1.0
