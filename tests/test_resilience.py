"""Resilience subsystem: deterministic fault injection, chaos-mode
simulation (bit-identical when faults are off), checksummed checkpoints,
bit-identical trainer resume, and the predictor fallback chain.
"""

from __future__ import annotations

import math
import shutil

import numpy as np
import pytest

from repro import obs
from repro.baselines import AnalyticalPredictor
from repro.core import DNNOccu, DNNOccuConfig, TrainConfig, Trainer
from repro.gpu import A100
from repro.graph import DataEdge, GraphBuilder
from repro.resilience import (CheckpointError, ExponentialBackoff,
                              FallbackPredictor, FaultConfig, FaultInjector,
                              analytical_tier, constant_tier,
                              default_fallback_chain, gnn_tier,
                              load_checkpoint, save_checkpoint)
from repro.sched import (Job, NvmlUtilPacking, OccuPacking, SlotPacking,
                         make_job, simulate)
from repro.models import ModelConfig


def job(jid=0, dur=10.0, occ=0.3, nvml=0.5, pred_occ=None, arrival=0.0):
    return Job(job_id=jid, model_name="m", duration_s=dur, occupancy=occ,
               nvml_utilization=nvml, predicted_occupancy=pred_occ,
               arrival_s=arrival)


def tiny_graph(broken=False):
    b = GraphBuilder("tiny")
    x = b.input((2, 3, 8, 8))
    y = b.conv2d(x, 4, 3, padding=1)
    y = b.relu(y)
    y = b.flatten(y)
    b.linear(y, 10)
    g = b.finish()
    if broken:
        # G002 self-loop: rejected by the lint preflight, but still
        # encodes to finite summary statistics (the analytical tier
        # can serve it).
        g.edges.append(DataEdge(src=2, dst=2,
                                tensor_shape=g.nodes[2].output_shape))
    return g


# --------------------------------------------------------------------- #
# Backoff
# --------------------------------------------------------------------- #

class TestBackoff:
    def test_caps_and_grows(self):
        b = ExponentialBackoff(base_s=1.0, factor=2.0, cap_s=10.0)
        assert b.schedule(6) == [1.0, 2.0, 4.0, 8.0, 10.0, 10.0]

    def test_large_attempt_does_not_overflow(self):
        b = ExponentialBackoff(base_s=1.0, factor=2.0, cap_s=30.0)
        assert b.delay(10_000) == 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base_s=0.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(factor=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(base_s=5.0, cap_s=1.0)
        with pytest.raises(ValueError):
            ExponentialBackoff().delay(0)


# --------------------------------------------------------------------- #
# FaultInjector
# --------------------------------------------------------------------- #

class TestFaultInjector:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(gpu_mtbf_s=-1.0)
        with pytest.raises(ValueError):
            FaultConfig(gpu_mttr_s=0.0)
        with pytest.raises(ValueError):
            FaultConfig(crash_prob=1.0)
        with pytest.raises(ValueError):
            FaultConfig(mispredict_std=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(checkpoint_interval_s=0.0)
        with pytest.raises(ValueError):
            FaultConfig(max_retries=-1)

    def test_transitions_deterministic_and_alternating(self):
        cfg = FaultConfig(gpu_mtbf_s=100.0, gpu_mttr_s=10.0)
        a = FaultInjector(cfg, seed=3)
        b = FaultInjector(cfg, seed=3)
        ta = [next(a.transitions(0)) for _ in range(1)]
        # Full streams, consumed independently, must agree event by event.
        ga, gb = a.transitions(0), b.transitions(0)
        events = [(next(ga), next(gb)) for _ in range(6)]
        assert all(x == y for x, y in events)
        times = [t for (t, _), _ in events]
        ups = [u for (_, u), _ in events]
        assert times == sorted(times)
        assert ups == [False, True, False, True, False, True]
        assert ta[0] == events[0][0]

    def test_transitions_order_independent(self):
        cfg = FaultConfig(gpu_mtbf_s=50.0)
        a = FaultInjector(cfg, seed=1)
        b = FaultInjector(cfg, seed=1)
        # Consuming GPU 1's stream first must not shift GPU 0's.
        _ = [next(b.transitions(1)) for _ in range(3)]
        assert next(a.transitions(0)) == next(b.transitions(0))

    def test_permanent_outage_ends_stream(self):
        inj = FaultInjector(
            FaultConfig(gpu_mtbf_s=10.0, gpu_mttr_s=math.inf), seed=0)
        events = list(inj.transitions(0))
        assert len(events) == 1 and events[0][1] is False

    def test_no_mtbf_no_outages(self):
        assert list(FaultInjector(FaultConfig(), 0).transitions(0)) == []

    def test_crash_fraction_bounds_and_determinism(self):
        inj = FaultInjector(FaultConfig(crash_prob=0.5), seed=2)
        for jid in range(20):
            frac = inj.crash_fraction(jid, 0)
            assert frac == inj.crash_fraction(jid, 0)
            if frac is not None:
                assert 0.05 <= frac <= 0.95
        assert FaultInjector(FaultConfig(), 0).crash_fraction(0, 0) is None

    def test_perturb_occupancy_clipped_and_identity(self):
        inj = FaultInjector(FaultConfig(mispredict_std=2.0), seed=0)
        for jid in range(30):
            assert 0.0 <= inj.perturb_occupancy(jid, 0.5) <= 1.0
        quiet = FaultInjector(FaultConfig(), 0)
        assert quiet.perturb_occupancy(0, 0.37) == 0.37

    def test_requeue_delay_follows_backoff(self):
        cfg = FaultConfig(backoff=ExponentialBackoff(base_s=2.0,
                                                     factor=3.0,
                                                     cap_s=50.0))
        inj = FaultInjector(cfg, seed=0)
        assert inj.requeue_delay(7, 1) == 2.0
        assert inj.requeue_delay(7, 3) == 18.0


# --------------------------------------------------------------------- #
# Chaos simulation
# --------------------------------------------------------------------- #

def chaos_jobs(n=8):
    return [job(i, dur=10.0 + 3.0 * i, occ=0.2 + 0.07 * (i % 4),
                nvml=0.5) for i in range(n)]


CRASHY = FaultConfig(crash_prob=0.5, checkpoint_interval_s=5.0,
                     backoff=ExponentialBackoff(base_s=0.5, factor=2.0,
                                                cap_s=8.0))


class TestChaosSimulation:
    @pytest.mark.parametrize("policy_cls", [SlotPacking, NvmlUtilPacking,
                                            OccuPacking])
    def test_zero_faults_bit_identical_to_plain(self, policy_cls):
        jobs = chaos_jobs()
        plain = simulate(jobs, 2, policy_cls())
        chaos = simulate(jobs, 2, policy_cls(),
                         faults=FaultInjector(FaultConfig(), seed=0))
        assert chaos.makespan_s == plain.makespan_s
        assert chaos.nvml_integral_s == plain.nvml_integral_s
        assert chaos.busy_integral_s == plain.busy_integral_s
        assert (chaos.evictions, chaos.retries, chaos.failed_jobs) \
            == (0, 0, 0)
        assert chaos.wasted_s == 0.0
        assert chaos.goodput_fraction == 1.0

    def test_same_seed_same_result(self):
        jobs = chaos_jobs()
        runs = [simulate(jobs, 2, OccuPacking(),
                         faults=FaultInjector(CRASHY, seed=5))
                for _ in range(2)]
        a, b = runs
        assert a.makespan_s == b.makespan_s
        assert a.evictions == b.evictions
        assert a.retries == b.retries
        assert a.wasted_s == b.wasted_s
        assert a.gpu_downtime_s == b.gpu_downtime_s

    def test_crashes_evict_and_still_complete(self):
        jobs = chaos_jobs()
        res = simulate(jobs, 2, OccuPacking(),
                       faults=FaultInjector(CRASHY, seed=5))
        assert res.evictions > 0
        assert res.retries == res.evictions  # budget never exhausted
        assert res.failed_jobs == 0
        assert all(j.finish_s is not None for j in res.jobs)
        assert res.wasted_s > 0.0
        assert 0.0 < res.goodput_fraction < 1.0
        assert res.goodput_s == pytest.approx(
            sum(j.duration_s for j in jobs))
        # Wasted work stretches the schedule beyond the fault-free one.
        assert res.makespan_s > simulate(jobs, 2, OccuPacking()).makespan_s

    def test_checkpointing_bounds_waste(self):
        jobs = chaos_jobs()
        base = dict(crash_prob=0.5,
                    backoff=ExponentialBackoff(base_s=0.5, factor=2.0,
                                               cap_s=8.0))
        with_ckpt = simulate(
            jobs, 2, OccuPacking(),
            faults=FaultInjector(
                FaultConfig(checkpoint_interval_s=2.0, **base), seed=5))
        without = simulate(
            jobs, 2, OccuPacking(),
            faults=FaultInjector(FaultConfig(**base), seed=5))
        # Identical crash schedule; checkpoints can only reduce rollback.
        assert with_ckpt.evictions == without.evictions
        assert with_ckpt.wasted_s < without.wasted_s

    def test_retry_budget_exhaustion_drops_jobs(self):
        jobs = chaos_jobs()
        cfg = FaultConfig(crash_prob=0.9, max_retries=1,
                          backoff=ExponentialBackoff(base_s=0.1,
                                                     cap_s=0.2))
        res = simulate(jobs, 2, OccuPacking(),
                       faults=FaultInjector(cfg, seed=11))
        assert res.failed_jobs > 0
        lost = [j for j in res.jobs if j.failed]
        assert len(lost) == res.failed_jobs
        assert all(j.finish_s is None for j in lost)
        assert all(j.evictions == 2 for j in lost)  # budget 1 -> 2nd kills
        # Lost jobs contribute nothing to goodput.
        assert res.goodput_s == pytest.approx(
            sum(j.duration_s for j in res.jobs if not j.failed))

    def test_gpu_outage_evicts_and_accumulates_downtime(self):
        jobs = chaos_jobs(4)
        cfg = FaultConfig(gpu_mtbf_s=15.0, gpu_mttr_s=5.0,
                          checkpoint_interval_s=4.0,
                          backoff=ExponentialBackoff(base_s=0.5, cap_s=4.0))
        res = simulate(jobs, 2, OccuPacking(),
                       faults=FaultInjector(cfg, seed=4))
        assert res.evictions > 0
        assert res.gpu_downtime_s > 0.0
        assert all(j.finish_s is not None for j in res.jobs)

    def test_mispredict_noise_changes_sched_view_only(self):
        jobs = [job(i, dur=5.0, occ=0.4, pred_occ=0.4) for i in range(6)]
        cfg = FaultConfig(mispredict_std=0.8)
        simulate(jobs, 2, OccuPacking(),
                 faults=FaultInjector(cfg, seed=9))
        assert any(j.noisy_occupancy is not None
                   and abs(j.noisy_occupancy - 0.4) > 1e-6 for j in jobs)
        # Ground truth and the prediction itself are untouched.
        assert all(j.occupancy == pytest.approx(0.4) for j in jobs)
        assert all(j.predicted_occupancy == pytest.approx(0.4)
                   for j in jobs)
        # Fault-free rerun of the same list clears the noise.
        simulate(jobs, 2, OccuPacking())
        assert all(j.noisy_occupancy is None for j in jobs)

    def test_fault_metrics_recorded(self):
        jobs = chaos_jobs()
        with obs.observed() as (_, registry):
            simulate(jobs, 2, OccuPacking(),
                     faults=FaultInjector(CRASHY, seed=5))
            dump = registry.to_dict()
        faults = dump.get("resilience_faults_total", [])
        assert any(m["labels"].get("kind") == "crash" and m["value"] > 0
                   for m in faults)
        retries = dump.get("resilience_retries", [])
        assert retries and retries[0]["value"]["count"] == len(jobs)


# --------------------------------------------------------------------- #
# Checkpoint container
# --------------------------------------------------------------------- #

class TestCheckpointContainer:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        arrays = {"w": np.arange(6, dtype=np.float64).reshape(2, 3),
                  "b": np.array([1.5, -2.5])}
        meta = {"epoch": 3, "note": "hi"}
        digest = save_checkpoint(path, arrays, meta, component="test")
        loaded, got_meta = load_checkpoint(path, component="test")
        assert got_meta == meta
        assert len(digest) == 64
        assert set(loaded) == {"w", "b"}
        np.testing.assert_array_equal(loaded["w"], arrays["w"])
        np.testing.assert_array_equal(loaded["b"], arrays["b"])

    def test_no_temp_litter(self, tmp_path):
        save_checkpoint(str(tmp_path / "a.ckpt"), {"x": np.zeros(2)}, {})
        assert [p.name for p in tmp_path.iterdir()] == ["a.ckpt"]

    def test_reserved_meta_key(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(str(tmp_path / "a.ckpt"),
                            {"__meta__": np.zeros(1)}, {})

    def test_corruption_detected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        save_checkpoint(str(path), {"x": np.arange(100.0)}, {"k": 1})
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(str(path))

    def test_bad_magic_and_missing_file(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(str(path))
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "missing"))

    def test_counters(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        with obs.observed() as (_, registry):
            save_checkpoint(path, {"x": np.zeros(1)}, {}, component="t")
            load_checkpoint(path, component="t")
            dump = registry.to_dict()
        assert dump["resilience_checkpoints_total"][0]["value"] == 1.0
        assert dump["resilience_restores_total"][0]["value"] == 1.0


# --------------------------------------------------------------------- #
# Trainer checkpoint/resume
# --------------------------------------------------------------------- #

CFG = TrainConfig(epochs=6, lr=1e-3, batch_size=4, seed=3)


def fresh_trainer(cfg=CFG):
    return Trainer(DNNOccu(DNNOccuConfig(hidden=8, num_heads=2), seed=1),
                   cfg)


class TestTrainerResume:
    def test_resume_is_bit_identical(self, tiny_dataset, tmp_path,
                                     monkeypatch):
        ckpt = str(tmp_path / "run.ckpt")
        mid = str(tmp_path / "mid.ckpt")
        orig = Trainer._save_checkpoint

        def spy(self, path, next_epoch, *args, **kwargs):
            orig(self, path, next_epoch, *args, **kwargs)
            if next_epoch == 3:
                shutil.copy(path, mid)

        monkeypatch.setattr(Trainer, "_save_checkpoint", spy)
        t_full = fresh_trainer()
        hist_full = t_full.fit(tiny_dataset, checkpoint_path=ckpt)

        # "Killed after epoch 3": a fresh process resumes from mid.ckpt.
        t_res = fresh_trainer()
        hist_res = t_res.fit(tiny_dataset, resume_from=mid)
        assert hist_res.train_loss == hist_full.train_loss
        full_sd = t_full.model.state_dict()
        for name, arr in t_res.model.state_dict().items():
            np.testing.assert_array_equal(arr, full_sd[name])

    def test_resume_restores_history_prefix(self, tiny_dataset, tmp_path):
        ckpt = str(tmp_path / "run.ckpt")
        cfg = TrainConfig(epochs=3, lr=1e-3, batch_size=4, seed=3)
        done = fresh_trainer(cfg).fit(tiny_dataset, checkpoint_path=ckpt)
        # Resuming a *finished* run trains zero further epochs.
        t = fresh_trainer(cfg)
        hist = t.fit(tiny_dataset, resume_from=ckpt)
        assert hist.train_loss == done.train_loss

    def test_corrupt_checkpoint_rejected(self, tiny_dataset, tmp_path):
        ckpt = tmp_path / "run.ckpt"
        cfg = TrainConfig(epochs=2, lr=1e-3, batch_size=4, seed=3)
        fresh_trainer(cfg).fit(tiny_dataset, checkpoint_path=str(ckpt))
        raw = bytearray(ckpt.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        ckpt.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            fresh_trainer(cfg).fit(tiny_dataset, resume_from=str(ckpt))

    def test_config_mismatch_rejected(self, tiny_dataset, tmp_path):
        ckpt = str(tmp_path / "run.ckpt")
        cfg = TrainConfig(epochs=2, lr=1e-3, batch_size=4, seed=3)
        fresh_trainer(cfg).fit(tiny_dataset, checkpoint_path=ckpt)
        other = TrainConfig(epochs=2, lr=5e-4, batch_size=4, seed=3)
        with pytest.raises(ValueError, match="lr"):
            fresh_trainer(other).fit(tiny_dataset, resume_from=ckpt)

    def test_non_trainer_checkpoint_rejected(self, tiny_dataset, tmp_path):
        path = str(tmp_path / "other.ckpt")
        save_checkpoint(path, {"x": np.zeros(1)}, {"kind": "other"})
        with pytest.raises(CheckpointError, match="not a trainer"):
            fresh_trainer().fit(tiny_dataset, resume_from=path)

    def test_checkpoint_every_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            fresh_trainer().fit(tiny_dataset, checkpoint_every=0)

    def test_best_state_restore_counted(self, tiny_dataset):
        cfg = TrainConfig(epochs=5, lr=1e-3, batch_size=4, seed=3,
                          patience=1)
        with obs.observed() as (_, registry):
            fresh_trainer(cfg).fit(tiny_dataset, val=tiny_dataset)
            dump = registry.to_dict()
        assert dump["trainer_best_state_restores_total"][0]["value"] == 1.0


# --------------------------------------------------------------------- #
# Fallback chain
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def fitted_analytical(tiny_dataset):
    return AnalyticalPredictor().fit(tiny_dataset)


class TestFallbackChain:
    def test_validation(self):
        with pytest.raises(ValueError):
            FallbackPredictor([])
        with pytest.raises(ValueError):
            FallbackPredictor([("a", float), ("a", float)])
        with pytest.raises(ValueError):
            FallbackPredictor([constant_tier()], conservative=1.5)
        with pytest.raises(ValueError):
            constant_tier(2.0)

    def test_primary_serves_clean_graph(self, fitted_analytical):
        model = DNNOccu(DNNOccuConfig(hidden=8, num_heads=2), seed=1)
        chain = default_fallback_chain(model=model,
                                       analytical=fitted_analytical)
        mean, std = chain(tiny_graph(), A100)
        assert 0.0 <= mean <= 1.0 and std == 0.0
        assert chain.last_tier == "gnn"
        assert chain.counts() == {"gnn": 1, "analytical": 0, "constant": 0}

    def test_lint_failing_graph_degrades_to_analytical(
            self, fitted_analytical):
        model = DNNOccu(DNNOccuConfig(hidden=8, num_heads=2), seed=1)
        chain = default_fallback_chain(model=model,
                                       analytical=fitted_analytical)
        with obs.observed() as (_, registry):
            mean, _ = chain(tiny_graph(broken=True), A100)
            dump = registry.to_dict()
        assert 0.0 <= mean <= 1.0
        assert chain.last_tier == "analytical"
        fb = dump["resilience_fallbacks_total"]
        assert fb[0]["labels"] == {"tier": "analytical"}
        assert fb[0]["value"] == 1.0
        faults = dump["resilience_faults_total"]
        assert any(m["labels"] == {"component": "predictor", "tier": "gnn"}
                   for m in faults)

    def test_all_tiers_fail_serves_constant(self):
        def boom(graph, device=None):
            raise RuntimeError("down")
        chain = FallbackPredictor([("a", boom), constant_tier(0.8)])
        assert chain(tiny_graph(broken=True), A100) == (0.8, 0.0)
        assert chain.last_tier == "constant"

    def test_non_finite_tier_output_is_a_failure(self):
        chain = FallbackPredictor([("nan", lambda g, d=None: float("nan")),
                                   constant_tier(0.5)])
        assert chain(tiny_graph(), A100) == (0.5, 0.0)
        assert chain.last_tier == "constant"

    def test_defensive_terminal_when_every_tier_fails(self):
        def boom(graph, device=None):
            raise RuntimeError("down")
        chain = FallbackPredictor([("only", boom)], conservative=0.9)
        assert chain(tiny_graph(), A100) == (0.9, 0.0)
        assert chain.last_tier == "conservative"

    def test_mean_and_std_clipped(self):
        chain = FallbackPredictor([("wild",
                                    lambda g, d=None: (1.7, -0.2))])
        assert chain(tiny_graph(), A100) == (1.0, 0.0)

    def test_make_job_passes_graph_to_chain(self, fitted_analytical):
        seen = {}

        def probe(graph, device=None):
            seen["nodes"] = graph.num_nodes
            seen["device"] = device.name
            return 0.55

        chain = FallbackPredictor([("probe", probe)])
        j = make_job(0, "lenet", ModelConfig(batch_size=16), A100,
                     iterations=50, predictor=chain)
        assert seen["nodes"] > 0 and seen["device"] == "A100"
        assert j.predicted_occupancy == pytest.approx(0.55)
        # The degraded prediction flows into a completing simulation.
        res = simulate([j], 1, OccuPacking())
        assert res.jobs[0].finish_s is not None

    def test_analytical_predict_one_matches_batch_path(
            self, fitted_analytical, tiny_dataset):
        sample = tiny_dataset[0]
        one = fitted_analytical.predict_one(sample.features)
        batch = fitted_analytical.predict(
            type(tiny_dataset)([sample]))[0]
        assert one == pytest.approx(float(batch))
