"""Liveness-based memory model tests."""

from __future__ import annotations

import pytest

from repro.graph import GraphBuilder
from repro.gpu import (ALLOCATOR_OVERHEAD_BYTES, peak_activation_bytes,
                       peak_memory_bytes, weight_bytes)
from repro.models import ModelConfig, build_model


class TestPeakActivations:
    def test_chain_peak_is_adjacent_pair(self):
        """In a chain, at most producer+consumer outputs are live."""
        b = GraphBuilder("chain")
        x = b.input((1, 1, 8, 8))           # 256 B
        y = b.relu(x)                        # 256 B
        y = b.relu(y)
        y = b.relu(y)
        g = b.finish()
        # Live set: previous output + current output = 512 B.
        assert peak_activation_bytes(g) == 512

    def test_diamond_keeps_branches_live(self):
        b = GraphBuilder("diamond")
        x = b.input((1, 1, 8, 8))            # 256 B
        a = b.relu(x)                         # 256 B
        c = b.sigmoid(x)                      # 256 B
        b.add(a, c)                           # 256 B
        g = b.finish()
        # At the Add: both branches + the Add output + x (just freed after
        # both consumers ran; x frees after sigmoid) -> peak >= 3 * 256.
        assert peak_activation_bytes(g) >= 3 * 256

    def test_monotone_in_batch(self):
        small = peak_activation_bytes(
            build_model("vgg-11", ModelConfig(batch_size=16)))
        big = peak_activation_bytes(
            build_model("vgg-11", ModelConfig(batch_size=64)))
        assert big == 4 * small

    def test_result_tensor_counted(self):
        b = GraphBuilder("single")
        b.input((1, 1, 8, 8))
        g = b.finish()
        assert peak_activation_bytes(g) == 256


class TestWeights:
    def test_conv_weights(self):
        b = GraphBuilder("g")
        x = b.input((1, 3, 8, 8))
        b.conv2d(x, 8, 3, padding=1)
        # 8*3*3*3 weights + 8 bias = 224 floats.
        assert weight_bytes(b.finish()) == 224 * 4

    def test_linear_weights(self):
        b = GraphBuilder("g")
        x = b.input((1, 10))
        b.linear(x, 5)
        assert weight_bytes(b.finish()) == (10 * 5 + 5) * 4

    def test_elementwise_has_no_weights(self):
        b = GraphBuilder("g")
        x = b.input((1, 10))
        b.relu(x)
        assert weight_bytes(b.finish()) == 0

    def test_resnet50_weights_near_25m_params(self):
        g = build_model("resnet-50", ModelConfig(batch_size=1))
        params = weight_bytes(g) / 4
        assert 20e6 < params < 35e6  # ResNet-50 has ~25.6 M parameters

    def test_gpt2_weights_near_124m_params(self):
        g = build_model("gpt-2", ModelConfig(batch_size=1, seq_len=64))
        params = weight_bytes(g) / 4
        # GPT-2 small: ~124 M (our graph ties the LM head -> counted once
        # as a Gemm; allow a generous band).
        assert 80e6 < params < 200e6


class TestPeakMemory:
    def test_includes_all_components(self):
        g = build_model("alexnet", ModelConfig(batch_size=16))
        total = peak_memory_bytes(g)
        assert total > ALLOCATOR_OVERHEAD_BYTES
        assert total >= weight_bytes(g) + peak_activation_bytes(g)

    def test_oom_integration(self):
        """A 24 GB-activation config must exceed the P40's 22.5 GB."""
        from repro.gpu import P40, OutOfMemoryError, profile_graph
        g = build_model("vgg-16", ModelConfig(batch_size=512))
        with pytest.raises(OutOfMemoryError):
            profile_graph(g, P40)
