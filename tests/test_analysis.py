"""Tests for the analysis utilities (per-group errors, correlations,
table formatting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import correlations, format_table, per_group_errors


class TestPerGroupErrors:
    def test_groups_separated(self):
        out = per_group_errors(pred=[1.1, 2.2, 0.9],
                               true=[1.0, 2.0, 1.0],
                               groups=["a", "b", "a"])
        assert set(out) == {"a", "b"}
        assert out["a"]["count"] == 2
        assert out["b"]["mre_percent"] == pytest.approx(10.0)

    def test_preserves_first_appearance_order(self):
        out = per_group_errors([1, 1, 1], [1, 1, 1], ["z", "a", "z"])
        assert list(out) == ["z", "a"]

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            per_group_errors([1.0], [1.0, 2.0], ["a", "b"])

    def test_single_group_matches_global(self):
        rng = np.random.default_rng(0)
        t = rng.uniform(0.1, 1, 10)
        p = t * 1.1
        out = per_group_errors(p, t, ["g"] * 10)
        assert out["g"]["mre_percent"] == pytest.approx(10.0)


class TestCorrelations:
    def test_perfect_positive(self):
        out = correlations([1, 2, 3, 4], [2, 4, 6, 8])
        assert out["pearson"] == pytest.approx(1.0)
        assert out["spearman"] == pytest.approx(1.0)

    def test_perfect_negative(self):
        out = correlations([1, 2, 3], [3, 2, 1])
        assert out["pearson"] == pytest.approx(-1.0)

    def test_monotone_nonlinear(self):
        x = np.linspace(1, 5, 20)
        out = correlations(x, np.exp(x))
        assert out["spearman"] == pytest.approx(1.0)
        assert out["pearson"] < 1.0

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            correlations([1.0], [2.0])


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.23456], ["b", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "alpha" in lines[2]
        assert "1.235" in lines[2]

    def test_columns_aligned(self):
        text = format_table(["x", "y"], [["a", 1.0], ["bbbb", 22.0]])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # equal widths

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text
