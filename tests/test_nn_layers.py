"""Layer tests: Linear, LayerNorm, attention, transformer block, LSTM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (FeedForward, LayerNorm, Linear, LSTM, LSTMCell,
                      MultiHeadAttention, TransformerEncoderLayer)
from repro.tensor import Tensor


class TestLinear:
    def test_output_shape(self, rng):
        lin = Linear(7, 3, rng)
        assert lin(Tensor(np.ones((4, 7)))).shape == (4, 3)

    def test_batched_leading_dims(self, rng):
        lin = Linear(7, 3, rng)
        assert lin(Tensor(np.ones((2, 4, 7)))).shape == (2, 4, 3)

    def test_no_bias(self, rng):
        lin = Linear(7, 3, rng, bias=False)
        assert lin.bias is None
        np.testing.assert_allclose(lin(Tensor(np.zeros((1, 7)))).data, 0.0)

    def test_matches_manual_affine(self, rng):
        lin = Linear(3, 2, rng)
        x = rng.normal(size=(5, 3))
        expected = x @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(lin(Tensor(x)).data, expected)

    def test_gradients_flow_to_weight_and_bias(self, rng):
        lin = Linear(3, 2, rng)
        lin(Tensor(np.ones((4, 3)))).sum().backward()
        assert lin.weight.grad is not None
        np.testing.assert_allclose(lin.bias.grad, [4.0, 4.0])


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        ln = LayerNorm(6)
        x = rng.normal(size=(4, 6)) * 5 + 3
        out = ln(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_affine_params_apply(self, rng):
        ln = LayerNorm(4)
        ln.gamma.data[:] = 2.0
        ln.beta.data[:] = 1.0
        out = ln(Tensor(rng.normal(size=(3, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-9)

    def test_gradcheck(self, rng):
        ln = LayerNorm(5)
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        ln(x).sum().backward()
        assert x.grad is not None and np.all(np.isfinite(x.grad))


class TestMultiHeadAttention:
    def test_self_attention_shape(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        assert mha(Tensor(np.ones((5, 8)))).shape == (5, 8)

    def test_cross_attention_shape(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        q = Tensor(np.ones((3, 8)))
        kv = Tensor(np.ones((7, 8)))
        assert mha(q, kv).shape == (3, 8)

    def test_dim_not_divisible_raises(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2, rng)

    def test_attn_bias_changes_output(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        x = Tensor(rng.normal(size=(4, 8)))
        bias = Tensor(rng.normal(size=(4, 4)) * 3)
        base = mha(x).data
        biased = mha(x, attn_bias=bias).data
        assert not np.allclose(base, biased)

    def test_strong_negative_bias_masks_token(self, rng):
        # A -inf-like bias on one key makes its value irrelevant.
        mha = MultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(3, 8))
        bias = np.zeros((3, 3))
        bias[:, 2] = -1e9
        out1 = mha(Tensor(x), attn_bias=Tensor(bias)).data
        x2 = x.copy()
        x2[2] += 100.0  # only reachable through the masked key
        out2 = mha(Tensor(x2), attn_bias=Tensor(bias)).data
        np.testing.assert_allclose(out1[:2], out2[:2], atol=1e-6)

    def test_gradients_reach_all_projections(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        mha(Tensor(rng.normal(size=(4, 8)))).sum().backward()
        for p in mha.parameters():
            assert p.grad is not None


class TestTransformerEncoderLayer:
    def test_shape_preserved(self, rng):
        layer = TransformerEncoderLayer(8, 2, 16, rng)
        assert layer(Tensor(np.ones((5, 8)))).shape == (5, 8)

    def test_residual_path_identity_at_zero_weights(self, rng):
        layer = TransformerEncoderLayer(8, 2, 16, rng)
        for p in layer.parameters():
            p.data[:] = 0.0
        x = rng.normal(size=(4, 8))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_feedforward(self, rng):
        ffn = FeedForward(6, 12, rng)
        assert ffn(Tensor(np.ones((3, 6)))).shape == (3, 6)


class TestLSTM:
    def test_cell_state_shapes(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell.init_state(batch=3)
        h2, c2 = cell(Tensor(np.ones((3, 4))), (h, c))
        assert h2.shape == (3, 6) and c2.shape == (3, 6)

    def test_cell_unbatched(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell.init_state(batch=0)
        h2, _ = cell(Tensor(np.ones(4)), (h, c))
        assert h2.shape == (6,)

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(4, 6, rng)
        np.testing.assert_allclose(cell.bias.data[6:12], 1.0)

    def test_lstm_output_sequence(self, rng):
        lstm = LSTM(4, 6, num_layers=2, rng=rng)
        out, states = lstm(Tensor(np.ones((5, 3, 4))))
        assert out.shape == (5, 3, 6)
        assert len(states) == 2

    def test_lstm_state_is_last_output(self, rng):
        lstm = LSTM(4, 6, num_layers=1, rng=rng)
        out, states = lstm(Tensor(rng.normal(size=(5, 3, 4))))
        np.testing.assert_allclose(out.data[-1], states[0][0].data)

    def test_lstm_gradient_flows_through_time(self, rng):
        lstm = LSTM(3, 4, num_layers=1, rng=rng)
        x = Tensor(rng.normal(size=(6, 2, 3)), requires_grad=True)
        out, _ = lstm(x)
        out[out.shape[0] - 1].sum().backward()
        # Gradient must reach the first timestep (no truncation).
        assert np.any(x.grad[0] != 0.0)

    def test_bounded_activations(self, rng):
        lstm = LSTM(3, 4, num_layers=1, rng=rng)
        out, _ = lstm(Tensor(rng.normal(size=(20, 2, 3)) * 100))
        assert np.all(np.abs(out.data) <= 1.0)  # h = o * tanh(c)
