"""Module container tests: traversal, state_dict, train/eval, optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Dropout, Linear, MLP, Sequential
from repro.tensor import Adam, Module, ModuleList, Parameter, SGD, Tensor, \
    clip_grad_norm


class Net(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 8, rng)
        self.blocks = ModuleList([Linear(8, 8, rng) for _ in range(2)])
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        h = self.fc1(x).relu()
        for b in self.blocks:
            h = b(h).relu()
        return h * self.scale


@pytest.fixture()
def net(rng):
    return Net(rng)


class TestModule:
    def test_named_parameters_order_and_count(self, net):
        names = [n for n, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "blocks.0.weight",
                         "blocks.0.bias", "blocks.1.weight", "blocks.1.bias",
                         "scale"]

    def test_num_parameters(self, net):
        assert net.num_parameters() == 4 * 8 + 8 + 2 * (8 * 8 + 8) + 1

    def test_zero_grad_clears_all(self, net):
        out = net(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self, net, rng):
        state = net.state_dict()
        other = Net(np.random.default_rng(99))
        x = Tensor(rng.normal(size=(2, 4)))
        assert not np.allclose(other(x).data, net(x).data)
        other.load_state_dict(state)
        np.testing.assert_allclose(other(x).data, net(x).data)

    def test_state_dict_is_a_copy(self, net):
        state = net.state_dict()
        state["scale"][0] = 123.0
        assert net.scale.data[0] == 1.0

    def test_load_state_dict_missing_key_raises(self, net):
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_shape_mismatch_raises(self, net):
        state = net.state_dict()
        state["scale"] = np.ones(3)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_train_eval_propagates(self, net):
        net.eval()
        assert not net.training
        assert all(not m.training for _, m in net.named_modules())
        net.train()
        assert all(m.training for _, m in net.named_modules())

    def test_dropout_respects_mode(self, rng):
        d = Dropout(0.5, rng)
        x = Tensor(np.ones((100,)))
        d.training = False
        np.testing.assert_allclose(d(x).data, x.data)
        d.training = True
        out = d(x).data
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}

    def test_modulelist_len_getitem(self, net):
        assert len(net.blocks) == 2
        assert isinstance(net.blocks[0], Linear)


class TestOptimizers:
    def _quadratic_problem(self):
        w = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])

        def loss():
            diff = w - Tensor(target)
            return (diff * diff).sum()
        return w, target, loss

    def test_sgd_converges(self):
        w, target, loss = self._quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-6)

    def test_sgd_momentum_converges(self):
        w, target, loss = self._quadratic_problem()
        opt = SGD([w], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-4)

    def test_adam_converges(self):
        w, target, loss = self._quadratic_problem()
        opt = Adam([w], lr=0.2)
        for _ in range(300):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-4)

    def test_adam_weight_decay_shrinks_weights(self):
        w1 = Parameter(np.array([2.0]))
        w2 = Parameter(np.array([2.0]))
        opt1 = Adam([w1], lr=0.01, weight_decay=0.0)
        opt2 = Adam([w2], lr=0.01, weight_decay=10.0)
        for _ in range(20):
            for w, opt in ((w1, opt1), (w2, opt2)):
                opt.zero_grad()
                (w * 0.0).sum().backward()
                opt.step()
        assert abs(w2.data[0]) < abs(w1.data[0])

    def test_optimizer_skips_param_without_grad(self):
        a = Parameter(np.array([1.0]))
        b = Parameter(np.array([1.0]))
        opt = SGD([a, b], lr=0.5)
        (a * 2).sum().backward()
        opt.step()
        assert a.data[0] != 1.0
        assert b.data[0] == 1.0

    def test_empty_optimizer_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(norm, 20.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0)

    def test_clip_grad_norm_no_clip_below_max(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])


class TestMLPAndSequential:
    def test_mlp_shapes(self, rng):
        mlp = MLP([4, 8, 3], rng)
        out = mlp(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_mlp_requires_two_widths(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_mlp_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            MLP([4, 2], rng, activation="swishish")

    def test_sequential_runs_in_order(self, rng):
        seq = Sequential(Linear(4, 6, rng), Linear(6, 2, rng))
        assert seq(Tensor(np.ones((1, 4)))).shape == (1, 2)
