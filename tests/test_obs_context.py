"""Request-scoped tracing: span context, cross-thread handoff, Chrome
round-trip with request grouping, and the flight recorder.

The tentpole contract under test: a request that enters on the caller
thread and resolves on the MicroBatcher dispatcher thread renders as
ONE connected span tree, keyed by a deterministic request_id/trace_id
pair, and the flight recorder keeps a bounded last-N record of every
request the service completed."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.core import DNNOccu, DNNOccuConfig
from repro.gpu import get_device
from repro.models import ModelConfig, build_model
from repro.obs.context import (capture_context, current_context,
                               new_request_id, new_trace_id,
                               request_scope, reset_ids, use_context)
from repro.obs.flight import (FlightRecord, FlightRecorder,
                              format_flight_table)
from repro.obs.summary import (format_request_summary, request_groups,
                               span_tree, summarize_trace)
from repro.serve import PredictorService

A100 = get_device("A100")


@pytest.fixture()
def enabled():
    reset_ids()
    with obs.observed() as (tracer, registry):
        yield tracer, registry


def _model(seed: int = 7) -> DNNOccu:
    return DNNOccu(DNNOccuConfig(hidden=16, num_heads=2), seed=seed)


def _graph(name: str = "lenet", batch: int = 8):
    return build_model(name, ModelConfig(batch_size=batch))


# --------------------------------------------------------------------- #
# SpanContext / request_scope
# --------------------------------------------------------------------- #

class TestContext:
    def test_ids_deterministic_after_reset(self):
        reset_ids()
        assert new_trace_id() == "trace-000001"
        assert new_trace_id() == "trace-000002"
        assert new_request_id() == "req-000001"
        reset_ids(5)
        assert new_trace_id() == "trace-000005"

    def test_no_ambient_context_by_default(self):
        assert current_context() is None
        assert capture_context() is None

    def test_scope_mints_and_restores(self):
        reset_ids()
        with request_scope() as ctx:
            assert ctx.trace_id == "trace-000001"
            assert ctx.request_id == "req-000001"
            assert current_context() is ctx
        assert current_context() is None

    def test_nested_scope_inherits_trace_id(self):
        reset_ids()
        with request_scope() as outer:
            with request_scope() as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.request_id != outer.request_id
            assert current_context() is outer

    def test_explicit_ids_win(self):
        with request_scope(trace_id="trace-X", request_id="req-Y") as ctx:
            assert (ctx.trace_id, ctx.request_id) == ("trace-X", "req-Y")

    def test_capture_without_tracer_keeps_ids(self):
        with request_scope() as ctx:
            snap = capture_context()
        assert snap.trace_id == ctx.trace_id
        assert snap.request_id == ctx.request_id
        assert snap.parent_span_id is None

    def test_capture_records_open_span(self, enabled):
        with request_scope():
            with obs.span("root") as sp:
                snap = capture_context()
                assert snap.parent_span_id == sp.span_id

    def test_use_context_reattaches_and_restores(self):
        with request_scope() as ctx:
            snap = capture_context()
        assert current_context() is None
        with use_context(snap):
            assert current_context() is snap
        assert current_context() is None


# --------------------------------------------------------------------- #
# Cross-thread span linkage
# --------------------------------------------------------------------- #

class TestCrossThreadLinkage:
    def test_far_side_span_parents_to_captured(self, enabled):
        tracer, _ = enabled
        with request_scope() as ctx:
            with obs.span("caller.root"):
                snap = capture_context()

                def far_side():
                    with use_context(snap):
                        with obs.span("dispatcher.work"):
                            pass

                t = threading.Thread(target=far_side)
                t.start()
                t.join()
        recs = {r.name: r for r in tracer.events}
        root, work = recs["caller.root"], recs["dispatcher.work"]
        assert work.trace_id == ctx.trace_id == root.trace_id
        assert work.request_id == ctx.request_id
        assert work.parent_id == root.span_id
        assert work.tid != root.tid  # genuinely another thread

    def test_context_free_span_carries_no_ids(self, enabled):
        tracer, _ = enabled
        with obs.span("bare"):
            pass
        (rec,) = tracer.events
        assert rec.trace_id is None and rec.request_id is None

    def test_thread_local_stack_beats_captured_parent(self, enabled):
        # A span nested on the far side parents to the far side's open
        # span, not to the captured parent — depth stays local.
        tracer, _ = enabled
        with request_scope():
            with obs.span("near"):
                snap = capture_context()
        with use_context(snap):
            with obs.span("far.outer"):
                with obs.span("far.inner"):
                    pass
        recs = {r.name: r for r in tracer.events}
        assert recs["far.outer"].parent_id == recs["near"].span_id
        assert recs["far.inner"].parent_id == recs["far.outer"].span_id


# --------------------------------------------------------------------- #
# Chrome round-trip + request grouping
# --------------------------------------------------------------------- #

class TestChromeRoundTrip:
    def _traced_serve(self, tracer, registry, n_graphs: int = 3):
        model = _model()
        names = ("lenet", "alexnet", "rnn")
        with PredictorService(model, A100) as svc:
            for name in names[:n_graphs]:
                svc.predict(_graph(name))
            svc.predict(_graph(names[0]))  # result-cache hit
            flight = svc.flight.to_dicts()
        return json.loads(obs.export_chrome_trace(
            tracer, registry, flight=flight))

    def test_request_args_survive_export_and_load(self, enabled,
                                                  tmp_path):
        tracer, registry = enabled
        trace = self._traced_serve(tracer, registry)
        path = tmp_path / "t.json"
        path.write_text(json.dumps(trace))
        loaded = obs.load_trace_file(str(path))
        groups = request_groups(loaded)
        assert len(groups) == 4
        for rid, events in groups.items():
            assert rid.startswith("req-")
            args = events[0]["args"]
            assert args["trace_id"].startswith("trace-")
            assert isinstance(args["span_id"], int)

    def test_every_request_group_is_connected(self, enabled):
        tracer, registry = enabled
        trace = self._traced_serve(tracer, registry)
        groups = request_groups(trace)
        assert groups  # sanity: requests were traced at all
        for events in groups.values():
            tree = span_tree(events)
            assert tree["connected"], events

    def test_queue_path_spans_cross_threads_in_one_tree(self, enabled):
        tracer, registry = enabled
        trace = self._traced_serve(tracer, registry)
        groups = request_groups(trace)
        queue_groups = [evs for evs in groups.values() if len(evs) > 1]
        assert queue_groups  # cold requests took the queue path
        for events in queue_groups:
            names = {e["name"] for e in events}
            assert "serve.request" in names
            assert "serve.resolve" in names
            tids = {e["tid"] for e in events}
            assert len(tids) == 2  # caller + dispatcher lanes
            assert span_tree(events)["connected"]

    def test_cache_hit_is_single_span_group(self, enabled):
        tracer, registry = enabled
        trace = self._traced_serve(tracer, registry)
        groups = request_groups(trace)
        singles = [evs for evs in groups.values() if len(evs) == 1]
        assert singles
        assert singles[-1][0]["name"] == "serve.request"

    def test_context_free_events_keep_bare_args(self, enabled):
        tracer, registry = enabled
        trace = self._traced_serve(tracer, registry)
        flushes = [e for e in trace["traceEvents"]
                   if e["name"] == "serve.flush"]
        assert flushes
        for ev in flushes:
            assert "request_id" not in ev["args"]

    def test_format_request_summary_renders_trees(self, enabled):
        tracer, registry = enabled
        trace = self._traced_serve(tracer, registry)
        text = format_request_summary(trace, limit=10)
        assert "req-000001" in text
        assert "serve.request" in text
        assert "DISCONNECTED" not in text

    def test_summarize_trace_counts_requests_and_flight(self, enabled):
        tracer, registry = enabled
        trace = self._traced_serve(tracer, registry)
        text = summarize_trace(trace)
        assert "requests: 4 traced" in text
        assert "flight recorder: 4 request records" in text
        assert "disconnected" not in text

    def test_disconnected_group_is_flagged(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 5, "pid": 1,
             "tid": 1, "args": {"request_id": "req-1", "trace_id": "t-1",
                                "span_id": 1}},
            {"name": "b", "ph": "X", "ts": 1, "dur": 2, "pid": 1,
             "tid": 2, "args": {"request_id": "req-1", "trace_id": "t-1",
                                "span_id": 2, "parent_span_id": 99}},
        ]}
        (events,) = request_groups(trace).values()
        tree = span_tree(events)
        assert not tree["connected"]
        assert sorted(tree["roots"]) == [1, 2]
        assert "[DISCONNECTED]" in format_request_summary(trace)


# --------------------------------------------------------------------- #
# Flight recorder
# --------------------------------------------------------------------- #

def _record(i: int, **over) -> FlightRecord:
    base = dict(request_id=f"req-{i:06d}", trace_id="-", graph="lenet",
                device="A100", outcome="served", cache="result_hit",
                latency_s=1e-4, prediction=0.5)
    base.update(over)
    return FlightRecord(**base)


class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_total(self):
        fr = FlightRecorder(capacity=4)
        for i in range(10):
            fr.record(_record(i))
        assert len(fr) == 4
        assert fr.total == 10
        assert [r.request_id for r in fr.records()] == \
            [f"req-{i:06d}" for i in range(6, 10)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_summary_groups_outcomes_and_caches(self):
        fr = FlightRecorder(capacity=8)
        fr.record(_record(1))
        fr.record(_record(2, outcome="shed", cache="miss",
                          fallback_tier="constant"))
        fr.record(_record(3, outcome="error", cache="miss",
                          prediction=None, error="ValueError"))
        s = fr.summary()
        assert s["by_outcome"] == {"served": 1, "shed": 1, "error": 1}
        assert s["by_cache"] == {"result_hit": 1, "miss": 2}
        assert s["recorded_total"] == s["in_ring"] == 3

    def test_to_dicts_round_trips_through_json(self):
        fr = FlightRecorder(capacity=2)
        fr.record(_record(1))
        loaded = json.loads(json.dumps(fr.to_dicts()))
        assert loaded[0]["request_id"] == "req-000001"
        assert loaded[0]["outcome"] == "served"

    def test_format_table_accepts_records_and_dicts(self):
        fr = FlightRecorder(capacity=4)
        fr.record(_record(1))
        fr.record(_record(2, outcome="shed", fallback_tier="constant"))
        for rows in (fr.records(), fr.to_dicts()):
            text = format_flight_table(rows)
            assert "req-000001" in text and "constant" in text
            assert text.splitlines()[0].split()[:2] == ["request",
                                                        "graph"]

    def test_format_table_empty(self):
        assert format_flight_table([]) == "(flight recorder empty)"

    def test_clear_empties_ring_but_not_total(self):
        fr = FlightRecorder(capacity=4)
        fr.record(_record(1))
        fr.clear()
        assert len(fr) == 0 and fr.total == 1


class TestServiceFlightIntegration:
    def test_untraced_requests_still_recorded_with_placeholder(self):
        reset_ids()
        with PredictorService(_model(), A100) as svc:
            svc.predict(_graph())
            svc.predict(_graph())
        recs = svc.flight.records()
        assert [r.request_id for r in recs] == ["req-000001",
                                                "req-000002"]
        assert all(r.trace_id == "-" for r in recs)
        assert [r.cache for r in recs] == ["miss", "result_hit"]
        assert recs[0].batch_size == 1 and recs[1].batch_size == 0
        assert all(r.latency_s > 0 for r in recs)

    def test_flight_capacity_zero_disables_recording(self):
        with PredictorService(_model(), A100, flight_capacity=0) as svc:
            svc.predict(_graph())
            assert svc.flight is None
            assert "flight" not in svc.stats()

    def test_traced_records_carry_real_trace_ids(self, enabled):
        with PredictorService(_model(), A100) as svc:
            svc.predict(_graph())
        (rec,) = svc.flight.records()
        assert rec.trace_id == "trace-000001"
        assert rec.request_id == "req-000001"

    def test_stats_exposes_flight_summary(self):
        with PredictorService(_model(), A100) as svc:
            svc.predict(_graph())
            stats = svc.stats()
        assert stats["flight"]["recorded_total"] == 1
        assert stats["flight"]["by_outcome"] == {"served": 1}

    def test_shed_requests_recorded_with_tier(self):
        reset_ids()
        graphs = [_graph(n, b) for n in ("lenet", "alexnet")
                  for b in (2, 4, 8)]
        with PredictorService(_model(), A100, max_batch_size=2,
                              deadline_s=60.0,
                              max_queue_depth=2) as svc:
            svc.batcher.pause()
            tickets = [svc.predict_async(g) for g in graphs]
            svc.batcher.resume()
            for t in tickets:
                t.result()
        shed = [r for r in svc.flight.records() if r.outcome == "shed"]
        assert len(shed) == len(graphs) - 2
        assert all(r.fallback_tier == "constant" for r in shed)
